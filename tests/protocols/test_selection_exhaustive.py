"""Exhaustive verification of Lemma 7 / Lemma C.2 on small systems.

Where :mod:`tests.protocols.test_selection` samples scenarios randomly,
this module *enumerates* every protocol-reachable combination of
ballot-0 votes and every recovery quorum for small (n, f, e) and asserts
the selection rule recovers the fast-decided value in all of them — and
that counterexamples exist one process below the bound.

Reachability constraints encoded by the enumerator:

* every process votes at most once, never for its own ``Propose`` (a
  process does not receive its own broadcast);
* task semantics: a vote's value must be >= the voter's own proposal;
* object semantics: a process with an input votes only for that exact
  value; processes without inputs vote freely;
* the winner's supporters include its proposer implicitly; a fast
  decision requires at least ``n - e`` supporters;
* if the winner's proposer sits in the recovery quorum, it must have
  decided before answering the ``1A`` (it can never complete the fast
  path after joining a slow ballot), so its report carries the decision.
"""

import itertools

import pytest

from repro.core import BOTTOM, is_bottom
from repro.protocols.selection import OneBReport, select_value

WINNER_PID = 0


def vote_options(pid, proposals, winner, object_semantics):
    """All legal ballot-0 votes for *pid* given everyone's proposals."""
    own = proposals.get(pid, BOTTOM)
    options = [None]  # abstain
    for proposer, value in proposals.items():
        if proposer == pid:
            continue  # cannot receive own Propose
        if object_semantics:
            if not is_bottom(own) and value != own:
                continue
        else:
            if not value >= own:
                continue
        options.append((value, proposer))
    return options


def enumerate_recovery_cases(n, f, e, proposals, object_semantics):
    """Yield (reports, winner) for every reachable fast-decided state."""
    winner = proposals[WINNER_PID]
    others = [pid for pid in range(n) if pid != WINNER_PID]
    per_process = [
        vote_options(pid, proposals, winner, object_semantics) for pid in others
    ]
    for votes in itertools.product(*per_process):
        assignment = dict(zip(others, votes))
        supporters = {WINNER_PID} | {
            pid for pid, vote in assignment.items() if vote == (winner, WINNER_PID)
        }
        if len(supporters) < n - e:
            continue  # no fast decision: premise not met
        # Deduplicate by the vote multiset signature to curb the quorum
        # loop (different assignments with equal reports are equivalent).
        for quorum in itertools.combinations(range(n), n - f):
            reports = []
            for pid in quorum:
                if pid == WINNER_PID:
                    reports.append(
                        OneBReport(
                            sender=pid,
                            value=BOTTOM,
                            proposer=BOTTOM,
                            decided=winner,
                            initial_value=winner,
                        )
                    )
                    continue
                vote = assignment[pid]
                reports.append(
                    OneBReport(
                        sender=pid,
                        value=vote[0] if vote else BOTTOM,
                        proposer=vote[1] if vote else BOTTOM,
                        decided=BOTTOM,
                        initial_value=proposals.get(pid, BOTTOM),
                    )
                )
            yield reports, winner


def count_failures(n, f, e, proposals, object_semantics):
    failures = 0
    total = 0
    for reports, winner in enumerate_recovery_cases(
        n, f, e, proposals, object_semantics
    ):
        total += 1
        if select_value(reports, n, f, e, own_initial=BOTTOM) != winner:
            failures += 1
    return failures, total


class TestLemma7Exhaustive:
    """Task semantics at n = max{2e+f, 2f+1}: zero failures, always."""

    def test_n3_f1_e1(self):
        # proposals: winner 9 at p0; competitors below it.
        proposals = {0: 9, 1: 3, 2: 5}
        failures, total = count_failures(3, 1, 1, proposals, False)
        assert total > 0
        assert failures == 0

    def test_n5_f2_e1(self):
        proposals = {0: 9, 1: 1, 2: 2, 3: 3, 4: 4}
        failures, total = count_failures(5, 2, 1, proposals, False)
        assert total > 0
        assert failures == 0

    def test_n6_f2_e2_with_high_competitor(self):
        # A competitor above the winner (its proposer can never support
        # the winner) plus duplicated low values: the hardest shapes.
        proposals = {0: 9, 1: 4, 2: 4, 3: 11, 4: 2, 5: 2}
        failures, total = count_failures(6, 2, 2, proposals, False)
        assert total > 0
        assert failures == 0

    def test_n6_f2_e2_same_value_co_proposers(self):
        # Two processes proposing the same value can vote for each other;
        # this is exactly the shape that makes the R-exclusion necessary.
        proposals = {0: 9, 1: 7, 2: 7, 3: 7, 4: 1, 5: 1}
        failures, total = count_failures(6, 2, 2, proposals, False)
        assert total > 0
        assert failures == 0

    def test_below_bound_has_failures(self):
        # n = 2e+f-1 = 5 with f=e=2: the Theorem 5 "only if" direction at
        # the selection-rule level.
        proposals = {0: 9, 1: 4, 2: 4, 3: 2, 4: 2}
        failures, total = count_failures(5, 2, 2, proposals, False)
        assert total > 0
        assert failures > 0


class TestLemmaC2Exhaustive:
    """Object semantics at n = max{2e+f-1, 2f+1}: zero failures."""

    def test_n5_f2_e2(self):
        # Only some processes have inputs (object formulation).
        proposals = {0: 9, 3: 4}
        failures, total = count_failures(5, 2, 2, proposals, True)
        assert total > 0
        assert failures == 0

    def test_n5_f2_e2_high_competitor(self):
        proposals = {0: 9, 3: 12}
        failures, total = count_failures(5, 2, 2, proposals, True)
        assert total > 0
        assert failures == 0

    def test_n8_f3_e3_sampled_proposals(self):
        proposals = {0: 9, 2: 5, 6: 12}
        failures, total = count_failures(8, 3, 3, proposals, True)
        assert total > 0
        assert failures == 0

    def test_below_bound_has_failures(self):
        # n = 2e+f-2 = 7 with f=e=3: Theorem 6 "only if" at the
        # selection-rule level — two solo proposers, votes split e-1/e-1.
        proposals = {0: 9, 4: 12}
        failures, total = count_failures(7, 3, 3, proposals, True)
        assert total > 0
        assert failures > 0

    def test_task_rule_on_object_size_fails(self):
        """The red lines earn the extra process: with task semantics
        (proposers may support foreign values) the same n = 2e+f-1 is
        NOT safe."""
        proposals = {0: 9, 1: 4, 2: 4, 3: 2, 4: 2}
        object_failures, _ = count_failures(5, 2, 2, proposals, True)
        task_failures, _ = count_failures(5, 2, 2, proposals, False)
        assert object_failures == 0
        assert task_failures > 0
