"""Property-based protocol tests: hypothesis drives the adversary.

Hypothesis generates arbitrary interleavings of deliveries, timer firings,
and crashes (within the budget) and asserts the safety half of consensus
— Agreement and Validity — for every protocol at its minimal system size.
Unlike the seeded fuzzer in :mod:`repro.bounds.search`, hypothesis
shrinks counterexamples, so a failure here localizes the offending
schedule.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import check_agreement, check_validity
from repro.omega import static_omega_factory
from repro.protocols import (
    ProposeRequest,
    fast_paxos_factory,
    paxos_factory,
    twostep_object_factory,
    twostep_task_factory,
)
from repro.sim import Arena

SCHEDULE_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def drive_schedule(data, arena, f, steps=120):
    """Consume hypothesis choices to drive an arbitrary legal schedule."""
    crashes_left = f
    for _ in range(steps):
        choices = []
        pending = arena.pending_messages()
        if pending:
            choices.append("deliver")
        timers = [t for t in arena.timers() if t[0] not in arena.crashed]
        if timers:
            choices.append("fire")
        live = sorted(set(range(arena.n)) - arena.crashed)
        if crashes_left > 0 and len(live) > 1:
            choices.append("crash")
        if not choices:
            return
        action = data.draw(st.sampled_from(choices))
        if action == "deliver":
            pm = data.draw(st.sampled_from(pending))
            if pm.uid in arena.pending and pm.receiver not in arena.crashed:
                arena.deliver(pm)
        elif action == "fire":
            pid, name, _ = data.draw(st.sampled_from(timers))
            if (pid, name) in {(a, b) for a, b, _ in arena.timers()}:
                arena.fire_timer(pid, name)
        else:
            arena.crash(data.draw(st.sampled_from(live)))
            crashes_left -= 1


def assert_safe(run):
    violations = check_agreement(run) + check_validity(run)
    assert not violations, "\n".join(map(str, violations)) + "\n" + run.format()


class TestTwoStepTaskSafety:
    @given(st.data())
    @SCHEDULE_SETTINGS
    def test_agreement_validity_under_arbitrary_schedules(self, data):
        f = e = 2
        n = 6
        proposals = {pid: data.draw(st.integers(0, 3)) for pid in range(n)}
        factory = twostep_task_factory(
            proposals, f, e, omega_factory=static_omega_factory(0)
        )
        arena = Arena(factory, n, proposals=proposals)
        arena.start_all()
        drive_schedule(data, arena, f)
        assert_safe(arena.run_record)


class TestTwoStepObjectSafety:
    @given(st.data())
    @SCHEDULE_SETTINGS
    def test_agreement_validity_under_arbitrary_schedules(self, data):
        f = e = 2
        n = 5
        factory = twostep_object_factory(
            f, e, omega_factory=static_omega_factory(0)
        )
        arena = Arena(factory, n)
        arena.start_all()
        proposer_count = data.draw(st.integers(1, 3))
        for pid in range(proposer_count):
            value = data.draw(st.integers(0, 2))
            uid = arena.inject(pid, ProposeRequest(value))
            arena.deliver(arena.pending[uid])
            arena.run_record.proposals[pid] = value
        drive_schedule(data, arena, f)
        assert_safe(arena.run_record)


class TestPaxosSafety:
    @given(st.data())
    @SCHEDULE_SETTINGS
    def test_agreement_validity_under_arbitrary_schedules(self, data):
        f, n = 2, 5
        proposals = {pid: pid for pid in range(n)}
        factory = paxos_factory(
            proposals, f, omega_factory=static_omega_factory(0)
        )
        arena = Arena(factory, n, proposals=proposals)
        arena.start_all()
        drive_schedule(data, arena, f)
        assert_safe(arena.run_record)


class TestFastPaxosSafety:
    @given(st.data())
    @SCHEDULE_SETTINGS
    def test_agreement_validity_under_arbitrary_schedules(self, data):
        f = e = 2
        n = 7
        proposals = {pid: pid % 3 for pid in range(n)}
        factory = fast_paxos_factory(
            proposals, f, e, omega_factory=static_omega_factory(0)
        )
        arena = Arena(factory, n, proposals=proposals)
        arena.start_all()
        drive_schedule(data, arena, f)
        assert_safe(arena.run_record)
