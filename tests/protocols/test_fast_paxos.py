"""Tests for the Fast Paxos baseline."""

import pytest

from repro.checks import (
    consensus_battery,
    failing_scenarios,
    fast_paxos_builder,
    shuffled_delivery,
)
from repro.core import ConfigurationError, require_consensus
from repro.omega import lowest_correct_omega_factory
from repro.protocols import (
    FastPaxosProcess,
    fast_paxos_factory,
    fast_paxos_min_processes,
)
from repro.sim import synchronous_run, two_step_deciders

F, E = 2, 2
N = fast_paxos_min_processes(F, E)  # 7


def build(proposals=None, faulty=frozenset(), n=N):
    proposals = proposals or {pid: 10 + pid for pid in range(n)}
    return (
        fast_paxos_factory(
            proposals, F, E, omega_factory=lowest_correct_omega_factory(set(faulty))
        ),
        proposals,
    )


class TestConfiguration:
    def test_min_processes_formula(self):
        assert fast_paxos_min_processes(2, 2) == 7
        assert fast_paxos_min_processes(1, 1) == 4
        assert fast_paxos_min_processes(3, 1) == 7  # 2f+1 dominates

    def test_bound_enforced(self):
        with pytest.raises(ConfigurationError, match="Fast Paxos needs"):
            FastPaxosProcess(0, 6, F, E, proposal=1)

    def test_bound_relaxed(self):
        FastPaxosProcess(0, 6, F, E, proposal=1, enforce_bound=False)


class TestFastBallot:
    def test_uniform_arrival_decides_everyone_in_two_steps(self):
        factory, proposals = build()
        run = synchronous_run(factory, N, prefer=3, proposals=proposals)
        assert two_step_deciders(run, 1.0) == set(range(N))
        assert run.decided_values() == {13}

    def test_fast_under_e_crashes(self):
        factory, proposals = build(faulty={0, 1})
        run = synchronous_run(factory, N, faulty={0, 1}, prefer=3, proposals=proposals)
        assert two_step_deciders(run, 1.0) == {2, 3, 4, 5, 6}

    def test_acceptor_votes_first_come_not_value_ordered(self):
        """The defining contrast with Figure 1: any first value wins the
        acceptor's vote, even a low one."""
        factory, proposals = build()
        run = synchronous_run(factory, N, prefer=0, proposals=proposals)
        # p0's value is the lowest and still gets everyone's vote.
        assert run.decided_values() == {10}
        assert two_step_deciders(run, 1.0) == set(range(N))

    def test_collision_falls_back_to_coordinated_ballot(self):
        factory, proposals = build()
        # Shuffled arrival orders collide the fast ballot somewhere.
        for seed in range(20):
            run = synchronous_run(
                factory,
                N,
                delivery_priority=shuffled_delivery(seed),
                proposals=proposals,
                horizon_rounds=40,
            )
            require_consensus(run)


class TestRecovery:
    def test_partial_fast_quorum_value_preserved(self):
        """If a value may have been chosen fast, recovery must propose it."""
        from repro.sim import Arena
        from repro.protocols.fast_paxos import BALLOT_TIMER, FProposal

        factory, proposals = build(faulty={6})
        arena = Arena(factory, N)
        arena.start_all()
        # All live acceptors vote p6's value, so it may reach n-e = 5 votes.
        arena.deliver_round(prefer_sender_first=6)
        # Nobody learns (votes still in flight); p6 crashes; leader recovers.
        arena.crash(6)
        arena.fire_timer(0, BALLOT_TIMER)
        run = arena.settle(targets=[0, 1, 2, 3, 4, 5])
        assert run.decided_values() == {16}

    def test_empty_fast_ballot_recovery_free_choice(self):
        from repro.sim import Arena
        from repro.protocols.fast_paxos import BALLOT_TIMER

        factory, proposals = build(faulty={6})
        arena = Arena(factory, N)
        arena.start(0)  # only the leader even started
        for pid in range(1, N - 1):
            arena.start(pid)
        # No proposal delivered anywhere; straight to a ballot.
        arena.crash(6)
        for pm in list(arena.pending_messages()):
            del arena.pending[pm.uid]  # adversary delays all fast proposals
        arena.fire_timer(0, BALLOT_TIMER)
        run = arena.settle(targets=[0])
        assert run.decided_value(0) == 10  # the coordinator's own proposal


class TestBattery:
    def test_full_battery_green(self):
        results = consensus_battery(fast_paxos_builder(F, E), N, F)
        bad = failing_scenarios(results)
        assert not bad, "\n".join(r.name for r in bad)

    def test_battery_green_f1_e1(self):
        results = consensus_battery(
            fast_paxos_builder(1, 1), 4, 1, async_seeds=(1, 2)
        )
        assert not failing_scenarios(results)


class TestLamportBoundTightness:
    """Fast Paxos genuinely needs max{2e+f+1, 2f+1} processes: one below
    (at Figure 1's task bound n = 2e+f!) its first-come fast path plus
    O4 recovery lose agreement. This is the other half of the paper's
    story — the protocols' requirements differ because their mechanisms
    do, not because anyone's analysis was sloppy."""

    def _drive_collision(self, n):
        from repro.omega import StaticOmega
        from repro.protocols.fast_paxos import (
            BALLOT_TIMER,
            F1A,
            F1B,
            F2A,
            F2B,
            FProposal,
            fast_paxos_factory,
        )
        from repro.sim import Arena

        f = e = 2
        proposals = {pid: 10 for pid in range(n)}
        proposals[n - 1] = 20  # one high competitor
        factory = fast_paxos_factory(
            proposals,
            f,
            e,
            omega_factory=lambda pid, total: StaticOmega(pid),
            enforce_bound=False,
        )
        arena = Arena(factory, n, proposals=proposals)
        arena.start_all()
        # Acceptors 0..3 vote 10 (first arrival from p0); the last two
        # acceptors vote 20 (first arrival from p[n-1]).
        for acceptor in range(4):
            pm = arena.pending_messages(receiver=acceptor, sender=0, kind=FProposal)[0]
            arena.deliver(pm)
        for acceptor in range(4, n):
            pm = arena.pending_messages(
                receiver=acceptor, sender=n - 1, kind=FProposal
            )[0]
            arena.deliver(pm)
        # Learner 0 hears the four 10-votes: n-e = 4 at n=6 -> decides 10.
        for voter in range(1, 4):
            pm = arena.pending_messages(receiver=0, sender=voter, kind=F2B)[0]
            arena.deliver(pm)
        # Recovery by p2 with a classic quorum of the last n-f acceptors:
        # {2,3,4,5} at n=6 (two 10-votes, two 20-votes), {2..6} at n=7.
        quorum = tuple(range(2, 2 + (n - f)))
        arena.fire_timer(2, BALLOT_TIMER)
        for target in quorum:
            pm = arena.pending_messages(receiver=target, sender=2, kind=F1A)[0]
            arena.deliver(pm)
        for sender in quorum:
            pm = arena.pending_messages(receiver=2, sender=sender, kind=F1B)[0]
            arena.deliver(pm)
        for target in quorum:
            pm = arena.pending_messages(receiver=target, sender=2, kind=F2A)[0]
            arena.deliver(pm)
        arena.deliver_where(kind=F2B, senders=quorum)
        return arena

    def test_agreement_breaks_at_2e_plus_f(self):
        from repro.core import check_agreement

        arena = self._drive_collision(6)  # n = 2e+f: one BELOW Lamport
        assert arena.decided_value(0) == 10
        violations = check_agreement(arena.run_record)
        assert violations, "Fast Paxos should lose agreement at n = 2e+f"
        assert "distinct decisions" in violations[0].description

    def test_same_attack_fails_at_lamport_bound(self):
        from repro.core import check_agreement

        # n = 2e+f+1 = 7: the fast quorum is now 5, so four 10-votes do
        # NOT decide; the adversary's learner stays silent and recovery
        # is free to pick either value.
        arena = self._drive_collision(7)
        assert arena.run_record.decision_time(0) is None or (
            not check_agreement(arena.run_record)
        )
        assert not check_agreement(arena.run_record)

    def test_figure1_resists_the_same_strategy_at_2e_plus_f(self):
        """The contrast: Figure 1's value-ordered fast path at the SAME
        n = 6 makes the 10-fast-decision impossible in this configuration
        (the 20-proposer never votes 10), and its R-exclusion recovery
        keeps any fast decision safe — demonstrated exhaustively by the
        explorer tests; here we just confirm the value-order refusal."""
        from repro.omega import lowest_correct_omega_factory
        from repro.protocols import twostep_task_factory
        from repro.protocols.twostep import Propose
        from repro.sim import Arena

        n, f, e = 6, 2, 2
        proposals = {pid: 10 for pid in range(n)}
        proposals[n - 1] = 20
        factory = twostep_task_factory(
            proposals, f, e, omega_factory=lowest_correct_omega_factory(set())
        )
        arena = Arena(factory, n, proposals=proposals)
        arena.start_all()
        # p5 (proposal 20) refuses every Propose(10): line 11.
        arena.deliver_where(receiver=5, kind=Propose)
        from repro.core import BOTTOM

        assert arena.processes[5].val is BOTTOM
