"""Tests for Figure 1, task variant: fast path, slow path, recovery."""

import pytest

from repro.checks import consensus_battery, failing_scenarios, twostep_task_builder
from repro.core import (
    BOTTOM,
    ConfigurationError,
    check_consensus,
    require_consensus,
)
from repro.omega import lowest_correct_omega_factory, static_omega_factory
from repro.protocols import TwoStepConfig, TwoStepProcess, twostep_task_factory
from repro.protocols.twostep import Decide, OneB, Propose, TwoA, TwoB
from repro.sim import Arena, CrashPlan, FixedLatency, Simulation, synchronous_run


def factory(n=6, f=2, e=2, proposals=None, faulty=frozenset(), **config_kw):
    proposals = proposals or {pid: 100 + pid for pid in range(n)}
    config = TwoStepConfig(f=f, e=e, **config_kw) if config_kw else None
    return (
        twostep_task_factory(
            proposals,
            f,
            e,
            omega_factory=lowest_correct_omega_factory(set(faulty)),
            config=config,
        ),
        proposals,
    )


class TestConfiguration:
    def test_bound_enforced_task(self):
        with pytest.raises(ConfigurationError, match="needs n >="):
            TwoStepProcess(0, 5, TwoStepConfig(f=2, e=2), proposal=1)

    def test_bound_relaxed_when_requested(self):
        config = TwoStepConfig(f=2, e=2, enforce_bound=False)
        TwoStepProcess(0, 5, config, proposal=1)

    def test_minimum_processes(self):
        assert TwoStepConfig(f=2, e=2).minimum_processes() == 6
        assert TwoStepConfig(f=2, e=2, is_object=True).minimum_processes() == 5
        assert TwoStepConfig(f=3, e=1).minimum_processes() == 7

    def test_object_rejects_constructor_proposal(self):
        config = TwoStepConfig(f=2, e=2, is_object=True)
        with pytest.raises(ConfigurationError, match="propose"):
            TwoStepProcess(0, 5, config, proposal=1)

    def test_missing_proposal_rejected(self):
        build, _ = factory(proposals={0: 1})
        with pytest.raises(ConfigurationError, match="no proposal"):
            build(1, 6)

    def test_delta_validation(self):
        with pytest.raises(ConfigurationError):
            TwoStepConfig(f=2, e=2, delta=0).validate(6)


class TestFastPath:
    def test_max_proposer_decides_in_two_steps(self):
        build, proposals = factory()
        run = synchronous_run(build, 6, prefer=5, proposals=proposals)
        assert run.decision_time(5) == 2.0
        assert run.decided_value(5) == 105

    def test_all_decide_by_three_steps_via_decide_broadcast(self):
        build, proposals = factory()
        run = synchronous_run(build, 6, prefer=5, proposals=proposals)
        assert all(run.decision_time(pid) <= 3.0 for pid in range(6))

    def test_fast_path_survives_e_crashes(self):
        build, proposals = factory(faulty={0, 1})
        run = synchronous_run(build, 6, faulty={0, 1}, prefer=5, proposals=proposals)
        assert run.decision_time(5) == 2.0
        require_consensus(run)

    def test_low_value_proposals_rejected(self):
        """Line 11: a process only accepts values >= its own proposal."""
        process = TwoStepProcess(2, 6, TwoStepConfig(f=2, e=2), proposal=102)
        arena = Arena(lambda pid, n: factory()[0](pid, n), 6)
        arena.start_all()
        target = arena.processes[5]  # proposal 105
        arena.deliver_where(receiver=5, kind=Propose)
        # 5 should have rejected every lower proposal.
        assert target.val is BOTTOM

    def test_vote_goes_to_first_acceptable_proposal(self):
        build, proposals = factory()
        arena = Arena(build, 6)
        arena.start_all()
        # Deliver p5's proposal to p0 first: accepted (105 >= 100).
        pm = arena.pending_messages(receiver=0, sender=5, kind=Propose)[0]
        arena.deliver(pm)
        assert arena.processes[0].val == 105
        assert arena.processes[0].proposer == 5
        # A later, even higher proposal would be rejected (val != BOTTOM).
        assert arena.pending_messages(receiver=5, sender=0, kind=TwoB)

    def test_same_value_everyone_can_be_fast(self):
        proposals = {pid: 42 for pid in range(6)}
        build, _ = factory(proposals=proposals)
        for target in range(6):
            run = synchronous_run(build, 6, prefer=target, proposals=proposals)
            assert run.decision_time(target) == 2.0, f"p{target} not fast"


class TestSlowPath:
    def test_leader_crash_recovers_via_ballot(self):
        # Max proposer crashed: fast path impossible for its value; the
        # Ω leader drives a slow ballot to termination.
        build, proposals = factory(faulty={5})
        run = synchronous_run(build, 6, faulty={5}, proposals=proposals)
        require_consensus(run)

    def test_no_preference_still_terminates(self):
        build, proposals = factory()
        run = synchronous_run(build, 6, proposals=proposals)
        require_consensus(run)

    def test_recovery_preserves_fast_decision(self):
        """A fast decision taken before a ballot change survives it."""
        build, proposals = factory()
        arena = Arena(build, 6)
        arena.start_all()
        # p5 decides fast.
        arena.deliver_round(prefer_sender_first=5)
        arena.deliver_where(receiver=5, kind=TwoB)
        assert arena.has_decided(5)
        fast_value = arena.decided_value(5)
        # p5 crashes; survivors run a ballot having seen only their votes.
        arena.crash(5)
        arena.fire_timer(0, "twostep:new_ballot")
        run = arena.settle()
        assert run.decided_values() == {fast_value}

    def test_ballot_numbers_owned_by_leader(self):
        process = TwoStepProcess(3, 6, TwoStepConfig(f=2, e=2), proposal=1)
        assert process._next_owned_ballot() == 3
        process.bal = 3
        assert process._next_owned_ballot() == 9
        process.bal = 100
        assert process._next_owned_ballot() % 6 == 3

    def test_one_b_ignored_by_non_owner(self):
        build, proposals = factory()
        arena = Arena(build, 6)
        arena.start_all()
        # A 1B for ballot 7 (owner 1) delivered to process 0: ignored.
        oneb = OneB(7, 0, BOTTOM, BOTTOM, BOTTOM, BOTTOM)
        uid = arena.inject(0, oneb, sender=2)
        arena.deliver(arena.pending[uid])
        assert not arena.pending_messages(kind=TwoA)


class TestCrashBattery:
    def test_full_battery_green(self):
        results = consensus_battery(twostep_task_builder(2, 2), 6, 2)
        bad = failing_scenarios(results)
        assert not bad, "\n".join(r.name for r in bad)

    def test_battery_green_at_larger_n(self):
        results = consensus_battery(twostep_task_builder(2, 2), 8, 2)
        assert not failing_scenarios(results)

    def test_battery_green_f3_e2(self):
        results = consensus_battery(
            twostep_task_builder(3, 2), 8, 3, async_seeds=(1,)
        )
        assert not failing_scenarios(results)


class TestDecideBroadcast:
    def test_decide_message_adopted(self):
        build, proposals = factory()
        arena = Arena(build, 6)
        arena.start_all()
        uid = arena.inject(2, Decide(999), sender=4)
        arena.deliver(arena.pending[uid])
        assert arena.decided_value(2) == 999

    def test_no_broadcast_when_ablated_breaks_termination(self):
        """Line 20 is load-bearing: without the Decide broadcast only the
        fast decider and ballot coordinators ever learn the decision."""
        build, proposals = factory(broadcast_decide=False)
        run = synchronous_run(build, 6, prefer=5, proposals=proposals)
        assert run.decision_time(5) == 2.0
        assert "Decide" not in run.messages_by_kind()
        violations = check_consensus(run)
        assert violations and all(
            v.property_name == "termination" for v in violations
        )
