"""Scale and determinism: bigger systems, bit-identical reruns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import require_consensus
from repro.omega import lowest_correct_omega_factory
from repro.protocols import twostep_task_factory
from repro.sim import (
    CrashPlan,
    PartialSynchrony,
    RandomLatency,
    Simulation,
    synchronous_run,
)


class TestScale:
    def test_fifteen_processes_f7_e4(self):
        f, e = 7, 4
        n = max(2 * e + f, 2 * f + 1)  # 15
        proposals = {pid: 1000 + pid for pid in range(n)}
        faulty = set(range(e))
        factory = twostep_task_factory(
            proposals, f, e, omega_factory=lowest_correct_omega_factory(faulty)
        )
        run = synchronous_run(
            factory, n, faulty=faulty, prefer=n - 1, proposals=proposals
        )
        assert run.decision_time(n - 1) == 2.0
        require_consensus(run)

    def test_max_crashes_at_scale(self):
        f, e = 7, 4
        n = 15
        proposals = {pid: 1000 + pid for pid in range(n)}
        faulty = set(range(f))  # the full resilience budget
        factory = twostep_task_factory(
            proposals, f, e, omega_factory=lowest_correct_omega_factory(faulty)
        )
        run = synchronous_run(
            factory, n, faulty=faulty, proposals=proposals, horizon_rounds=40
        )
        require_consensus(run)

    def test_partial_synchrony_at_scale(self):
        f, e = 5, 3
        n = max(2 * e + f, 2 * f + 1)  # 11
        proposals = {pid: pid for pid in range(n)}
        factory = twostep_task_factory(
            proposals, f, e, omega_factory=lowest_correct_omega_factory(set())
        )
        sim = Simulation(
            factory,
            n,
            latency=PartialSynchrony(delta=1.0, gst=15.0, seed=9),
            proposals=proposals,
        )
        run = sim.run_until_all_decide(until=200.0)
        require_consensus(run)


class TestDeterminism:
    def _signature(self, seed):
        f, e = 2, 2
        n = 6
        proposals = {pid: pid for pid in range(n)}
        factory = twostep_task_factory(
            proposals, f, e, omega_factory=lowest_correct_omega_factory({1})
        )
        sim = Simulation(
            factory,
            n,
            latency=RandomLatency(0.3, 2.5, seed=seed),
            crashes=CrashPlan.at(1.0, [1]),
            proposals=proposals,
        )
        run = sim.run(until=80.0)
        return tuple(repr(record) for record in run.records)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_same_seed_identical_trace(self, seed):
        assert self._signature(seed) == self._signature(seed)

    def test_decision_values_stable_across_seeds(self):
        # Different schedules may decide different (valid) values, but
        # every run must satisfy the spec.
        values = set()
        for seed in range(6):
            f, e, n = 2, 2, 6
            proposals = {pid: pid for pid in range(n)}
            factory = twostep_task_factory(
                proposals, f, e, omega_factory=lowest_correct_omega_factory(set())
            )
            sim = Simulation(
                factory,
                n,
                latency=RandomLatency(0.3, 2.5, seed=seed),
                proposals=proposals,
            )
            run = sim.run_until_all_decide(until=100.0)
            require_consensus(run)
            values |= run.decided_values()
        assert values <= set(proposals.values())
