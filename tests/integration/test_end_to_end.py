"""Full-stack integration tests: real heartbeat Ω, partial synchrony,
WAN latencies, SMR — everything composed."""

import pytest

from repro.core import require_consensus
from repro.omega import heartbeat_omega_factory
from repro.protocols import (
    ProposeRequest,
    TwoStepConfig,
    twostep_object_factory,
    twostep_task_factory,
)
from repro.sim import CrashPlan, FixedLatency, PartialSynchrony, Simulation
from repro.smr import check_logs_consistent, put_get_workload, run_kv_workload, smr_factory
from repro.wan import five_regions, round_robin_deployment


class TestHeartbeatOmegaIntegration:
    """The protocols driven by the *real* distributed Ω, not an oracle."""

    def test_task_consensus_with_heartbeat_omega(self):
        n, f, e = 6, 2, 2
        proposals = {pid: 50 + pid for pid in range(n)}
        factory = twostep_task_factory(
            proposals, f, e, omega_factory=heartbeat_omega_factory(delta=1.0)
        )
        sim = Simulation(factory, n, latency=FixedLatency(1.0), proposals=proposals)
        run = sim.run_until_all_decide(until=100.0)
        require_consensus(run)

    def test_task_consensus_heartbeat_omega_with_crashes(self):
        n, f, e = 6, 2, 2
        proposals = {pid: 50 + pid for pid in range(n)}
        factory = twostep_task_factory(
            proposals, f, e, omega_factory=heartbeat_omega_factory(delta=1.0)
        )
        sim = Simulation(
            factory,
            n,
            latency=FixedLatency(1.0),
            crashes=CrashPlan.at(0.5, [0, 5]),  # leader AND max proposer die
            proposals=proposals,
        )
        run = sim.run_until_all_decide(until=200.0)
        require_consensus(run)

    def test_object_consensus_heartbeat_omega_partial_synchrony(self):
        n, f, e = 5, 2, 2
        factory = twostep_object_factory(
            f, e, omega_factory=heartbeat_omega_factory(delta=1.0)
        )
        latency = PartialSynchrony(delta=1.0, gst=12.0, pre_gst_max=6.0, seed=4)
        sim = Simulation(factory, n, latency=latency)
        sim.inject(0.0, 2, ProposeRequest("a"))
        sim.inject(0.5, 4, ProposeRequest("b"))
        sim.run_record.proposals.update({2: "a", 4: "b"})
        run = sim.run_until_all_decide(until=250.0)
        require_consensus(run)

    def test_paxos_with_heartbeat_omega_leader_crash(self):
        from repro.protocols import paxos_factory

        n, f = 5, 2
        proposals = {pid: pid for pid in range(n)}
        factory = paxos_factory(
            proposals, f, omega_factory=heartbeat_omega_factory(delta=1.0)
        )
        sim = Simulation(
            factory,
            n,
            latency=FixedLatency(1.0),
            crashes=CrashPlan.at(2.5, [0]),
            proposals=proposals,
        )
        run = sim.run_until_all_decide(until=200.0)
        require_consensus(run)


class TestDeterminismAcrossStack:
    def _signature(self):
        n, f, e = 5, 2, 2
        factory = twostep_object_factory(
            f, e, omega_factory=heartbeat_omega_factory(delta=1.0)
        )
        latency = PartialSynchrony(delta=1.0, gst=8.0, seed=11)
        sim = Simulation(factory, n, latency=latency)
        sim.inject(0.0, 1, ProposeRequest("x"))
        sim.inject(1.0, 3, ProposeRequest("y"))
        run = sim.run(until=60.0)
        return [repr(record) for record in run.records]

    def test_identical_traces(self):
        assert self._signature() == self._signature()


class TestSmrOnWan:
    def test_geo_replicated_kv_service(self):
        f = e = 2
        n = 5
        deployment = round_robin_deployment(five_regions(), n)
        delta = deployment.delta()
        factory = smr_factory(
            f,
            e,
            delta=delta,
            omega_factory=heartbeat_omega_factory(delta=delta),
            consensus_config=TwoStepConfig(f=f, e=e, delta=delta, is_object=True),
        )
        ops = put_get_workload(
            5, ["k1", "k2"], proxies=list(range(n)), spacing=5 * delta
        )
        outcome = run_kv_workload(
            factory,
            n,
            ops,
            until=60 * delta,
            latency=deployment.latency_model(),
        )
        assert not outcome.unfinished
        assert check_logs_consistent(outcome.replicas) == []
        # Commit latencies are on the WAN scale: tens to hundreds of ms.
        for latency_ms in outcome.commit_latency.values():
            assert 1.0 <= latency_ms <= 2 * delta


class TestCrossValidation:
    """The positive and negative results must cohere: the same protocol
    that satisfies the definitions at the bound is broken one process
    below by the witness."""

    def test_task_boundary_is_sharp(self):
        from repro.bounds import task_lower_bound_witness
        from repro.checks import check_task_two_step, twostep_task_builder

        f = e = 2
        at_bound = check_task_two_step(
            twostep_task_builder(f, e), 6, e, max_configurations=8
        )
        assert at_bound.satisfied
        below = task_lower_bound_witness(f, e)
        assert below.violation_found

    def test_object_boundary_is_sharp(self):
        from repro.bounds import object_lower_bound_witness
        from repro.checks import check_object_two_step, twostep_object_builder

        f = e = 3
        at_bound = check_object_two_step(
            twostep_object_builder(f, e), 8, e, max_faulty_sets=6
        )
        assert at_bound.satisfied
        below = object_lower_bound_witness(f, e)
        assert below.violation_found
