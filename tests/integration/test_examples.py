"""Smoke tests: every example script must run clean and say what it
promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "two-step!" in out
        assert "7 vs 6 vs 5" in out
        assert "violations: none" in out

    def test_lower_bound_witness(self):
        out = run_example("lower_bound_witness.py")
        assert out.count("AGREEMENT VIOLATION") >= 4
        assert "views identical" in out

    def test_wan_replication(self):
        out = run_example("wan_replication.py")
        assert "Commit latency vs process count" in out
        assert "saves" in out

    def test_kv_store_smr(self):
        out = run_example("kv_store_smr.py")
        assert "violations: none" in out
        assert "final log at replica 0" in out

    def test_epaxos_motivation(self):
        out = run_example("epaxos_motivation.py")
        assert "two message delays" in out
        assert "object bound admits it" in out

    def test_trace_anatomy(self):
        out = run_example("trace_anatomy.py")
        assert "DECIDES 105" in out
        assert "two-step deciders: [5]" in out

    def test_explore_safety(self):
        out = run_example("explore_safety.py")
        assert "SAFE" in out and "exhaustive" in out
        assert "VIOLATION: agreement" in out
