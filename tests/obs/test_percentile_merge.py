"""Property tests: percentile exactness and merge-order independence.

The percentile estimator returns bucket upper edges clamped to the
observed max, and every input to the estimate (bounds, per-bucket
counts, min/max, total) is itself order-independent under merge — so
merging snapshots then taking a percentile must equal taking the
percentile of one histogram fed the union of samples.  Hypothesis
drives that equality over arbitrary sample partitions; the exactness
cases pin the satellite fix (a bucket holding a single value at q=1.0
reports the value, not the bucket edge).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Histogram, MetricsRegistry, merge_snapshots

BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0)

samples = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=40,
)
quantiles = st.sampled_from((0.5, 0.9, 0.99, 1.0))


def _fill(values) -> Histogram:
    histogram = Histogram(bounds=BOUNDS)
    for value in values:
        histogram.observe(value)
    return histogram


class TestExactness:
    def test_q1_returns_exact_max_not_bucket_edge(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(1.5)
        assert histogram.percentile(1.0) == 1.5

    def test_single_value_in_overflow_bucket_is_exact(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(123.456)
        assert histogram.percentile(1.0) == 123.456
        assert histogram.percentile(0.5) == 123.456

    def test_interior_quantile_clamps_edge_to_observed_max(self):
        histogram = Histogram(bounds=(10.0, 1000.0))
        histogram.observe(11.0)
        histogram.observe(12.0)
        # Both samples sit in the (10, 1000] bucket whose edge wildly
        # overstates them; the clamp caps the estimate at the max.
        assert histogram.percentile(0.5) == 12.0
        assert histogram.percentile(0.99) == 12.0


class TestMergeConsistency:
    @given(left=samples, right=samples, q=quantiles)
    @settings(max_examples=150, deadline=None)
    def test_merge_then_percentile_equals_percentile_of_union(
        self, left, right, q
    ):
        merged = _fill(left)
        merged.merge(_fill(right))
        union = _fill(left + right)
        assert merged.percentile(q) == union.percentile(q)

    @given(left=samples, right=samples, q=quantiles)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_commutative_for_percentiles(self, left, right, q):
        ab = _fill(left)
        ab.merge(_fill(right))
        ba = _fill(right)
        ba.merge(_fill(left))
        assert ab.percentile(q) == ba.percentile(q)

    @given(values=samples, q=quantiles)
    @settings(max_examples=60, deadline=None)
    def test_snapshot_roundtrip_preserves_percentiles(self, values, q):
        histogram = _fill(values)
        restored = Histogram.from_dict(histogram.to_dict())
        assert restored.percentile(q) == histogram.percentile(q)


class TestMergeSnapshots:
    def test_heterogeneous_bounds_raise_with_histogram_name(self):
        # Snapshots from differently-configured nodes (e.g. an old build
        # with other default bounds): merge must fail loudly, naming the
        # offending histogram, not silently misbucket.
        def snapshot_with(bounds):
            histogram = Histogram(bounds=bounds)
            histogram.observe(0.5)
            return {
                "counters": {},
                "gauges": {},
                "histograms": {"smr.commit_seconds": histogram.to_dict()},
            }

        with pytest.raises(ValueError, match="smr.commit_seconds"):
            merge_snapshots(
                [snapshot_with((1.0, 2.0)), snapshot_with((1.0, 3.0))]
            )

    def test_unreachable_nodes_contribute_nothing(self):
        live = MetricsRegistry()
        live.inc("consensus.decisions_fast", 2)
        live.observe("smr.commit_seconds", 0.25)
        merged = merge_snapshots([None, live.snapshot(), None, None])
        assert merged["counters"] == {"consensus.decisions_fast": 2}
        assert merged["histograms"]["smr.commit_seconds"]["count"] == 1

    def test_disjoint_histogram_names_union(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("stage.queue_seconds", 0.1)
        b.observe("stage.apply_seconds", 0.2)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert set(merged["histograms"]) == {
            "stage.queue_seconds",
            "stage.apply_seconds",
        }
