"""Unit tests for span recording and the critical-path merger.

Synthetic traces here are hand-built in virtual seconds, one fast-path
and one recovery-path command, so the merger's output is exact: the
stage deltas pin the clock-skew rule (origin-node subtractions only)
and the breakdown pins the fast-vs-recovery split the live loadgen
reports.
"""

import pytest

from repro.obs import (
    DEFAULT_SPAN_CAPACITY,
    NULL_SPANS,
    NullSpans,
    Observability,
    SpanRecorder,
    critical_path,
    critical_paths,
    merge_span_events,
    stage_breakdown,
)


class TestSpanRecorder:
    def test_every_nth_seal_is_sampled(self):
        spans = SpanRecorder(sample=3)
        minted = [spans.maybe_sample(0, slot) for slot in range(7)]
        assert minted == ["t0.0", None, None, "t0.3", None, None, "t0.6"]

    def test_sample_one_traces_every_seal(self):
        spans = SpanRecorder(sample=1)
        assert [spans.maybe_sample(2, s) for s in range(3)] == [
            "t2.0",
            "t2.1",
            "t2.2",
        ]

    def test_sample_zero_is_adopt_only(self):
        spans = SpanRecorder(sample=0)
        assert spans.maybe_sample(0, 0) is None
        # ...but explicit records (adopted traces) still land.
        assert spans.record("t9.1", "recv", 0.5, src=1) == 0
        assert len(spans) == 1

    def test_seq_survives_ring_eviction(self):
        spans = SpanRecorder(sample=1, capacity=2)
        for index in range(5):
            spans.record("t0.0", "seal", float(index))
        assert spans.dropped == 3
        assert [event["seq"] for event in spans.events()] == [3, 4]

    def test_record_returns_parent_seq_and_keeps_fields(self):
        spans = SpanRecorder()
        seq = spans.record("t0.0", "seal", 1.0, slot=4, commands=2)
        assert seq == 0
        (event,) = spans.events()
        assert event["slot"] == 4 and event["commands"] == 2
        assert event["stage"] == "seal" and event["trace"] == "t0.0"

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SpanRecorder(sample=-1)
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)
        assert SpanRecorder().capacity == DEFAULT_SPAN_CAPACITY

    def test_null_spans_records_nothing(self):
        assert NULL_SPANS.enabled is False
        assert NullSpans().maybe_sample(0, 0) is None
        spans = NullSpans()
        assert spans.record("t", "seal", 0.0) == -1
        assert len(spans) == 0

    def test_observability_snapshot_reports_span_counts(self):
        obs = Observability(node=1, spans=SpanRecorder(sample=1))
        obs.spans.record("t1.0", "seal", 0.0)
        snapshot = obs.snapshot()
        assert snapshot["span_events"] == 1
        assert snapshot["span_dropped"] == 0
        assert "span_events" not in Observability(node=1).snapshot()


def _fast_trace():
    """Origin node 0 seals slot 3 at t=1.0; fast decide at 1.2."""
    node0 = [
        {"seq": 0, "trace": "t0.3", "stage": "submit", "t": 0.6},
        {"seq": 1, "trace": "t0.3", "stage": "seal", "t": 1.0, "slot": 3, "commands": 2},
        {"seq": 2, "trace": "t0.3", "stage": "decide", "t": 1.2, "slot": 3, "path": "fast", "ballot": 0},
        {"seq": 3, "trace": "t0.3", "stage": "apply", "t": 1.25, "slot": 3},
        {"seq": 4, "trace": "t0.3", "stage": "reply", "t": 1.3},
    ]
    node1 = [
        # Remote clock runs 10s ahead: must never enter a delta.
        {"seq": 0, "trace": "t0.3", "stage": "recv", "t": 11.1, "src": 0},
        {"seq": 1, "trace": "t0.3", "stage": "apply", "t": 11.3, "slot": 3},
    ]
    return node0, node1


def _slow_trace():
    node0 = [
        {"seq": 5, "trace": "t0.7", "stage": "submit", "t": 2.0},
        {"seq": 6, "trace": "t0.7", "stage": "seal", "t": 2.1, "slot": 7, "commands": 1},
        {"seq": 7, "trace": "t0.7", "stage": "decide", "t": 2.9, "slot": 7, "path": "slow", "ballot": 1},
        {"seq": 8, "trace": "t0.7", "stage": "apply", "t": 3.0, "slot": 7},
        {"seq": 9, "trace": "t0.7", "stage": "reply", "t": 3.05},
    ]
    return node0


class TestCriticalPath:
    def test_merge_tags_nodes_and_sorts(self):
        node0, node1 = _fast_trace()
        traces = merge_span_events({0: node0, 1: node1})
        assert set(traces) == {"t0.3"}
        events = traces["t0.3"]
        assert [e["node"] for e in events[:5]] == [0, 0, 0, 0, 0]
        assert all("node" in e for e in events)
        assert [e["t"] for e in events] == sorted(e["t"] for e in events)

    def test_fast_path_stage_deltas_are_origin_local(self):
        node0, node1 = _fast_trace()
        path = critical_path(merge_span_events({0: node0, 1: node1})["t0.3"])
        assert path["origin"] == 0 and path["slot"] == 3
        assert path["path"] == "fast" and path["ballot"] == 0
        assert path["commands"] == 2
        assert path["remote_nodes"] == [1]
        stages = path["stages"]
        assert stages["queue"] == pytest.approx(0.4)
        assert stages["consensus"] == pytest.approx(0.2)
        assert stages["apply"] == pytest.approx(0.05)
        assert stages["reply"] == pytest.approx(0.05)
        # Total from origin events only — node 1's skewed clock ignored.
        assert stages["total"] == pytest.approx(0.7)

    def test_trace_without_seal_is_incomplete(self):
        assert critical_path(
            [{"seq": 0, "trace": "t", "stage": "submit", "t": 0.0, "node": 0}]
        ) is None

    def test_critical_paths_sorts_by_slot(self):
        node0_fast, node1 = _fast_trace()
        merged = merge_span_events({0: node0_fast + _slow_trace(), 1: node1})
        paths = critical_paths(merged)
        assert [p["slot"] for p in paths] == [3, 7]

    def test_stage_breakdown_separates_fast_from_recovery(self):
        node0_fast, node1 = _fast_trace()
        merged = merge_span_events({0: node0_fast + _slow_trace(), 1: node1})
        breakdown = stage_breakdown(critical_paths(merged))
        assert breakdown["counts"] == {"fast": 1, "slow": 1}
        fast = breakdown["paths"]["fast"]
        slow = breakdown["paths"]["slow"]
        assert fast["consensus"]["p50"] == pytest.approx(0.2)
        assert slow["consensus"]["p50"] == pytest.approx(0.8)
        # The recovery path pays its extra delay in consensus, not apply.
        assert slow["consensus"]["mean"] > fast["consensus"]["mean"]
        assert slow["apply"]["mean"] == pytest.approx(0.1)

    def test_breakdown_of_nothing_is_empty(self):
        assert stage_breakdown([]) == {"paths": {}, "counts": {}}
