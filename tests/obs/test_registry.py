"""Unit tests for the metrics registry: bucketing edges and merging.

The histogram semantics this file pins — inclusive upper edges, one
overflow bucket, merge-only-with-identical-bounds — are what make
per-node snapshots mergeable into the cluster view that ``repro stats``
and ``Simulation.stats()`` both report.
"""

import json

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Observability,
    default_latency_bounds,
    fast_path_ratio,
    merge_snapshots,
    message_label,
)


class TestHistogramBucketing:
    def test_empty_histogram(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        assert histogram.count == 0
        assert histogram.sum == 0.0
        assert histogram.mean is None
        assert histogram.min is None and histogram.max is None
        assert histogram.percentile(0.5) is None
        assert histogram.counts == [0, 0, 0]

    def test_single_sample(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        histogram.observe(1.5)
        assert histogram.count == 1
        assert histogram.counts == [0, 1, 0, 0]
        assert histogram.mean == 1.5
        assert histogram.min == histogram.max == 1.5
        # Bucket-edge estimates are clamped to the observed max, so a
        # lone sample reports its exact value (q=1.0 is always the max).
        assert histogram.percentile(0.5) == 1.5
        assert histogram.percentile(1.0) == 1.5

    def test_interior_percentile_reports_edge_when_max_is_beyond(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        histogram.observe(1.5)
        histogram.observe(1.6)
        histogram.observe(3.5)  # max lives beyond the p50 bucket
        assert histogram.percentile(0.5) == 2.0  # edge, not clamped
        assert histogram.percentile(1.0) == 3.5  # exact

    def test_upper_edges_are_inclusive(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(1.0)  # lands in bucket 0: v <= 1.0
        histogram.observe(2.0)  # lands in bucket 1: 1.0 < v <= 2.0
        histogram.observe(2.0001)  # overflow bucket
        assert histogram.counts == [1, 1, 1]

    def test_overflow_bucket_reports_exact_max(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(9.75)
        assert histogram.counts == [0, 1]
        assert histogram.percentile(1.0) == 9.75

    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_percentile_rejects_bad_quantile(self):
        histogram = Histogram(bounds=(1.0,))
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_default_bounds_cover_sub_ms_to_tens_of_seconds(self):
        bounds = default_latency_bounds()
        assert bounds[0] == pytest.approx(0.0001)
        assert bounds[-1] > 50.0
        assert list(bounds) == sorted(bounds)


class TestHistogramMerge:
    def test_merge_across_nodes(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 2.0))
        a.observe(0.5)
        a.observe(1.5)
        b.observe(3.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.sum == pytest.approx(5.0)
        assert a.min == 0.5 and a.max == 3.0

    def test_merge_with_empty_keeps_sidecars(self):
        a = Histogram(bounds=(1.0,))
        a.observe(0.25)
        a.merge(Histogram(bounds=(1.0,)))
        assert a.count == 1 and a.min == a.max == 0.25
        empty = Histogram(bounds=(1.0,))
        empty.merge(a)
        assert empty.count == 1 and empty.min == empty.max == 0.25

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_roundtrip_through_dict(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        payload = json.loads(json.dumps(histogram.to_dict()))
        restored = Histogram.from_dict(payload)
        assert restored.to_dict() == histogram.to_dict()
        assert restored.percentile(1.0) == 5.0

    def test_from_dict_rejects_inconsistent_counts(self):
        payload = Histogram(bounds=(1.0, 2.0)).to_dict()
        payload["counts"] = [0]
        with pytest.raises(ValueError):
            Histogram.from_dict(payload)


class TestRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("sent.TwoA")
        registry.inc("sent.TwoA", delta=4)
        registry.gauge_max("outbox", 3)
        registry.gauge_max("outbox", 1)  # not a new high-water mark
        registry.observe("latency", 0.01)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"sent.TwoA": 5}
        assert snapshot["gauges"] == {"outbox": 3}
        assert snapshot["histograms"]["latency"]["count"] == 1
        assert registry.counter_value("sent.TwoA") == 5
        assert registry.counter_value("never-written") == 0

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.gauge_max("b", 2.5)
        registry.observe("c", 0.1)
        json.dumps(registry.snapshot())  # must not raise

    def test_null_registry_writes_nothing(self):
        registry = NullRegistry()
        registry.inc("a")
        registry.observe("b", 1.0)
        registry.gauge_max("c", 9)
        snapshot = registry.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}


class TestMergeSnapshots:
    def test_counters_add_gauges_max_histograms_merge(self):
        r0, r1 = MetricsRegistry(), MetricsRegistry()
        r0.inc("sent.TwoB", 3)
        r1.inc("sent.TwoB", 4)
        r1.inc("recv.Decide", 1)
        r0.gauge_max("hwm", 2)
        r1.gauge_max("hwm", 7)
        r0.observe("lat", 0.5)
        r1.observe("lat", 1.5)
        merged = merge_snapshots([r0.snapshot(), r1.snapshot()])
        assert merged["counters"] == {"recv.Decide": 1, "sent.TwoB": 7}
        assert merged["gauges"] == {"hwm": 7}
        assert merged["histograms"]["lat"]["count"] == 2
        assert merged["histograms"]["lat"]["min"] == 0.5
        assert merged["histograms"]["lat"]["max"] == 1.5

    def test_none_entries_skipped(self):
        r = MetricsRegistry()
        r.inc("x")
        merged = merge_snapshots([None, r.snapshot(), None])
        assert merged["counters"] == {"x": 1}

    def test_merge_of_nothing_is_empty(self):
        merged = merge_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}


class TestFastPathRatio:
    def test_ratio_from_counters(self):
        registry = MetricsRegistry()
        registry.inc("consensus.decisions_fast", 3)
        registry.inc("consensus.decisions_slow", 1)
        registry.inc("consensus.decisions_learned", 10)  # excluded
        assert fast_path_ratio(registry.snapshot()) == 0.75

    def test_no_quorum_decisions_is_none(self):
        registry = MetricsRegistry()
        registry.inc("consensus.decisions_learned", 5)
        assert fast_path_ratio(registry.snapshot()) is None
        assert fast_path_ratio({"counters": {}}) is None


class TestMessageLabel:
    def test_plain_and_envelope_labels(self):
        class Ping:
            pass

        class Wrapped:
            def __init__(self, inner):
                self.inner = inner

        assert message_label(Ping()) == "Ping"
        assert message_label(Wrapped(Ping())) == "Wrapped.Ping"
        # Cached path returns the same label.
        assert message_label(Wrapped(Ping())) == "Wrapped.Ping"


class TestObservability:
    def test_default_is_live_registry_null_trace(self):
        obs = Observability(node=3)
        obs.registry.inc("x")
        obs.trace.emit("ignored")  # NullTrace: no-op
        snapshot = obs.snapshot()
        assert snapshot["counters"] == {"x": 1}
        assert "trace_events" not in snapshot

    def test_disabled_writes_nothing(self):
        obs = Observability.disabled(node=1)
        obs.registry.inc("x")
        assert obs.snapshot()["counters"] == {}
