"""Unit tests for the flight-recorder trace and decision-record merge."""

import io
import json

import pytest

from repro.obs import (
    PATH_FAST,
    PATH_LEARNED,
    PATH_SLOW,
    NullTrace,
    TraceRecorder,
    decision_record,
    merge_decision_records,
    slot_paths,
)


class TestTraceRecorder:
    def test_records_in_order_with_fields(self):
        trace = TraceRecorder(capacity=8)
        trace.emit("decide", slot=0, path="fast")
        trace.emit("timer", t=1.5)
        events = trace.events()
        assert [event["kind"] for event in events] == ["decide", "timer"]
        assert events[0] == {"seq": 0, "kind": "decide", "slot": 0, "path": "fast"}
        assert events[1]["t"] == 1.5
        assert len(trace) == 2
        assert trace.dropped == 0

    def test_ring_evicts_oldest_first(self):
        trace = TraceRecorder(capacity=3)
        for index in range(5):
            trace.emit("e", index=index)
        events = trace.events()
        # Two oldest evicted; the retained window is the most recent 3.
        assert [event["index"] for event in events] == [2, 3, 4]
        assert trace.dropped == 2
        assert len(trace) == 3

    def test_eviction_never_renumbers_seq(self):
        trace = TraceRecorder(capacity=2)
        for _ in range(5):
            trace.emit("e")
        # seq keeps climbing; the gap at the front shows dropped history.
        assert [event["seq"] for event in trace.events()] == [3, 4]
        trace.emit("e")
        assert trace.events()[-1]["seq"] == 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_clear(self):
        trace = TraceRecorder(capacity=4)
        trace.emit("e")
        trace.clear()
        assert len(trace) == 0
        trace.emit("e")
        assert trace.events()[0]["seq"] == 1  # seq survives clear

    def test_dump_jsonl_to_stream(self):
        trace = TraceRecorder(capacity=4)
        trace.emit("decide", slot=1)
        trace.emit("decide", slot=2)
        sink = io.StringIO()
        assert trace.dump_jsonl(sink) == 2
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["slot"] == 1
        assert json.loads(lines[1])["slot"] == 2

    def test_dump_jsonl_to_path(self, tmp_path):
        trace = TraceRecorder(capacity=4)
        trace.emit("e", index=7)
        path = tmp_path / "trace.jsonl"
        assert trace.dump_jsonl(str(path)) == 1
        assert json.loads(path.read_text().strip())["index"] == 7

    def test_null_trace_is_inert(self):
        trace = NullTrace()
        trace.emit("anything", heavy="payload")
        assert len(trace) == 0
        assert trace.events() == []
        assert trace.enabled is False
        assert TraceRecorder.enabled is True


class TestMergeDecisionRecords:
    def test_fast_beats_slow_beats_learned(self):
        per_node = {
            0: [decision_record(slot=0, path=PATH_LEARNED, ballot=None, value_id="v")],
            1: [decision_record(slot=0, path=PATH_FAST, ballot=0, value_id="v")],
            2: [decision_record(slot=0, path=PATH_SLOW, ballot=2, value_id="v")],
        }
        merged = merge_decision_records(per_node)
        slot = merged["slots"][0]
        assert slot["path"] == PATH_FAST
        assert slot["ballot"] == 0
        assert slot["paths"] == {0: PATH_LEARNED, 1: PATH_FAST, 2: PATH_SLOW}
        assert merged["fast_slots"] == 1 and merged["slow_slots"] == 0
        assert merged["fast_path_ratio"] == 1.0
        assert merged["conflicts"] == []

    def test_all_learned_slot_is_excluded_from_ratio(self):
        per_node = {
            0: [decision_record(slot=3, path=PATH_LEARNED, ballot=None, value_id="v")],
        }
        merged = merge_decision_records(per_node)
        assert merged["slots"][3]["path"] == PATH_LEARNED
        assert merged["fast_path_ratio"] is None

    def test_value_disagreement_is_a_conflict(self):
        per_node = {
            0: [decision_record(slot=0, path=PATH_FAST, ballot=0, value_id="a")],
            1: [decision_record(slot=0, path=PATH_FAST, ballot=0, value_id="b")],
        }
        merged = merge_decision_records(per_node)
        assert len(merged["conflicts"]) == 1
        assert "slot 0" in merged["conflicts"][0]

    def test_latency_backfills_from_any_node(self):
        per_node = {
            0: [decision_record(slot=0, path=PATH_LEARNED, ballot=None, value_id="v")],
            1: [
                decision_record(
                    slot=0, path=PATH_FAST, ballot=0, value_id="v", latency_seconds=0.2
                )
            ],
        }
        merged = merge_decision_records(per_node)
        assert merged["slots"][0]["latency_seconds"] == 0.2

    def test_slot_paths_view(self):
        per_node = {
            0: [
                decision_record(slot=0, path=PATH_FAST, ballot=0, value_id="v"),
                decision_record(slot=1, path=PATH_SLOW, ballot=1, value_id="w"),
            ],
        }
        merged = merge_decision_records(per_node)
        assert slot_paths(merged) == {0: PATH_FAST, 1: PATH_SLOW}
        assert merged["fast_path_ratio"] == 0.5
