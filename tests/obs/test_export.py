"""Unit tests for the export surfaces: Prometheus text and JSONL rows.

The exposition-format assertions here are the same ones the CI smoke
step applies to a live node's ``GET /metrics`` response — every
``# TYPE`` declared before its samples, cumulative buckets ending at
``+Inf``, `_count` equal to the histogram total.
"""

import json

import pytest

from repro.obs import MetricsRegistry, prometheus_text, timeseries_row


def _loaded_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("sent.TwoA", 5)
    registry.inc("consensus.decisions_fast", 3)
    registry.gauge_max("net.outbox_hwm.1", 7)
    for value in (0.0005, 0.002, 0.002, 9.0):
        registry.observe("smr.commit_seconds", value)
    return registry


class TestPrometheusText:
    def test_counters_gauges_histograms_render(self):
        text = prometheus_text(_loaded_registry().snapshot())
        assert "# TYPE repro_sent_TwoA counter" in text
        assert "repro_sent_TwoA 5" in text
        assert "# TYPE repro_net_outbox_hwm_1 gauge" in text
        assert "repro_net_outbox_hwm_1 7" in text
        assert "# TYPE repro_smr_commit_seconds histogram" in text
        assert 'repro_smr_commit_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_smr_commit_seconds_count 4" in text
        assert text.endswith("\n")

    def test_buckets_are_cumulative_and_end_at_total(self):
        text = prometheus_text(_loaded_registry().snapshot())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_smr_commit_seconds_bucket")
        ]
        assert counts == sorted(counts)  # cumulative = monotone
        assert counts[-1] == 4  # +Inf bucket equals count
        total = [
            line
            for line in text.splitlines()
            if line.startswith("repro_smr_commit_seconds_sum")
        ]
        assert float(total[0].rsplit(" ", 1)[1]) == pytest.approx(9.0045)

    def test_type_line_precedes_samples(self):
        lines = prometheus_text(_loaded_registry().snapshot()).splitlines()
        seen_types = set()
        for line in lines:
            if line.startswith("# TYPE "):
                seen_types.add(line.split()[2])
                continue
            name = line.split("{")[0].split(" ")[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    base = name[: -len(suffix)]
                    break
            assert base in seen_types, line

    def test_labels_are_rendered_and_escaped(self):
        registry = MetricsRegistry()
        registry.inc("x")
        text = prometheus_text(
            registry.snapshot(), labels={"node": '0"quoted"'}
        )
        assert 'repro_x{node="0\\"quoted\\""} 1' in text

    def test_metric_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.inc("sent_bytes.TwoA-odd name")
        registry.inc("9starts.with.digit")
        text = prometheus_text(registry.snapshot())
        assert "repro_sent_bytes_TwoA_odd_name 1" in text
        assert "repro__9starts_with_digit 1" in text

    def test_empty_snapshot_renders_empty_document(self):
        assert prometheus_text(MetricsRegistry().snapshot()) == "\n"


class TestTimeseriesRow:
    def test_row_is_flat_and_json_safe(self):
        registry = _loaded_registry()
        registry.inc("sent_bytes.TwoA", 1000)
        registry.inc("recv_bytes.TwoB", 500)
        row = timeseries_row(registry.snapshot(), t=12.5, node=2)
        json.dumps(row)  # must not raise
        assert row["t"] == 12.5 and row["node"] == 2
        assert row["decisions_fast"] == 3
        assert row["commands_committed"] == 4
        assert row["sent_bytes"] == 1000 and row["recv_bytes"] == 500
        assert row["outbox_hwm"] == 7
        # p99 clamps to the observed max (9.0s → ms).
        assert row["commit_p99_ms"] == pytest.approx(9000.0)

    def test_empty_snapshot_row_uses_none_latencies(self):
        row = timeseries_row(MetricsRegistry().snapshot(), t=0.0, node=0)
        assert row["commit_p50_ms"] is None
        assert row["commands_committed"] == 0
        assert row["span_events"] == 0
