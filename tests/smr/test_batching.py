"""Batching and pipelining semantics, strictly above the slot protocol.

The throughput knobs added to :class:`~repro.smr.log.SMRReplica` must not
change what the per-slot consensus instances see: a
:class:`~repro.smr.kvstore.CommandBatch` is just another totally-ordered
proposal value, and ``window`` only changes how many of the proxy's own
slots are open at once. These tests pin the semantics the live path
relies on: apply order equals submit order, a command riding two batches
applies exactly once, and pipelined slots genuinely overlap.
"""

import pytest

from repro.core import ConfigurationError
from repro.core.values import BOTTOM
from repro.omega import static_omega_factory
from repro.smr import (
    CommandBatch,
    KVCommand,
    NOOP_COMMAND,
    check_logs_consistent,
    commands_in,
    put_get_workload,
    run_kv_workload,
    smr_factory,
)
from repro.smr.client import ClientOp

N, F, E = 3, 1, 1


def factory(batch_size=1, window=1):
    return smr_factory(
        F,
        E,
        omega_factory=static_omega_factory(0),
        batch_size=batch_size,
        window=window,
    )


def _put(index, command_id=None, key="k"):
    return KVCommand(
        op="put", key=key, value=index, command_id=command_id or f"cmd-{index}"
    )


def _ops(commands, proxy=0, time=0.0):
    return [ClientOp(time=time, proxy=proxy, command=c) for c in commands]


class TestConfiguration:
    def test_batch_size_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="batch_size"):
            factory(batch_size=0)(0, N)

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="window"):
            factory(window=0)(0, N)


class TestCommandBatchValue:
    """A batch must behave like any other Figure 1 proposal value."""

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            CommandBatch(commands=())

    def test_command_id_is_the_batch_id(self):
        batch = CommandBatch((_put(0),), batch_id="__batch:0:0__")
        assert batch.command_id == "__batch:0:0__"

    def test_batches_are_totally_ordered_and_hashable(self):
        a = CommandBatch((_put(0),), batch_id="a")
        b = CommandBatch((_put(1),), batch_id="b")
        assert (a < b) != (b < a)
        assert a <= a and a >= a
        assert len({a, b, a}) == 2

    def test_bottom_is_below_every_batch(self):
        batch = CommandBatch((_put(0),), batch_id="a")
        assert BOTTOM < batch
        assert batch > BOTTOM
        assert not (batch < BOTTOM)

    def test_bare_command_orders_as_its_singleton_batch(self):
        # A gap-repair noop (bare KVCommand) can race a batch for a slot;
        # the comparison must agree with the singleton-batch embedding.
        command = _put(3)
        singleton = CommandBatch((command,), batch_id=command.command_id)
        other = CommandBatch((_put(7),), batch_id="other")
        assert (other < command) == (other < singleton)
        assert (other > command) == (other > singleton)
        assert (NOOP_COMMAND < other) == (
            CommandBatch((NOOP_COMMAND,), batch_id=NOOP_COMMAND.command_id) < other
        )

    def test_commands_in_unwraps_both_shapes(self):
        command = _put(0)
        assert commands_in(command) == (command,)
        assert commands_in(CommandBatch((command,), batch_id="b")) == (command,)


class TestBatchingSemantics:
    def test_batch_applies_in_submit_order_on_every_replica(self):
        commands = [_put(i) for i in range(9)]
        outcome = run_kv_workload(
            factory(batch_size=8), N, _ops(commands), until=60.0
        )
        assert not outcome.unfinished
        # First submission opens slot 0 alone; the other eight commands
        # queue behind it and ride slot 1 as one batch.
        proxy = outcome.replicas[0]
        assert isinstance(proxy.decided[1], CommandBatch)
        assert [c.command_id for c in proxy.decided[1].commands] == [
            f"cmd-{i}" for i in range(1, 9)
        ]
        for replica in outcome.replicas:
            applied = [c.command_id for c in replica.store.log]
            assert applied == [f"cmd-{i}" for i in range(9)]
        assert check_logs_consistent(outcome.replicas) == []

    def test_batch_size_one_keeps_bare_command_values(self):
        ops = put_get_workload(6, ["x"], proxies=list(range(N)), spacing=4.0)
        outcome = run_kv_workload(factory(), N, ops, until=80.0)
        assert not outcome.unfinished
        for value in outcome.replicas[0].decided.values():
            assert isinstance(value, KVCommand)

    def test_duplicate_command_across_proxies_applies_once(self):
        # The same command submitted to two proxies rides two different
        # batches racing slot 0; whichever wins, the store's
        # idempotence-by-id admits it exactly once.
        dup = _put(0, command_id="dup")
        ops = [
            ClientOp(time=0.0, proxy=0, command=dup),
            ClientOp(time=0.0, proxy=1, command=dup),
        ]
        outcome = run_kv_workload(factory(batch_size=4), N, ops, until=200.0)
        assert not outcome.unfinished
        assert check_logs_consistent(outcome.replicas) == []
        for replica in outcome.replicas:
            applied = [c.command_id for c in replica.store.log]
            assert applied.count("dup") == 1
            assert len(applied) == len(set(applied))

    def test_contended_batched_workload_commits_each_exactly_once(self):
        ops = put_get_workload(10, ["x"], proxies=[0, 1], spacing=0.0)
        outcome = run_kv_workload(
            factory(batch_size=4, window=2), N, ops, until=300.0
        )
        assert not outcome.unfinished
        assert check_logs_consistent(outcome.replicas) == []
        for replica in outcome.replicas:
            applied = [c.command_id for c in replica.store.log]
            assert len(applied) == len(set(applied))


class TestWindowPipelining:
    def test_window_overlaps_slots(self):
        # Four commands at t=0 with window=4 open four slots at once:
        # under FixedLatency(1.0) all commit on the fast path at 2Δ.
        commands = [_put(i) for i in range(4)]
        outcome = run_kv_workload(
            factory(window=4), N, _ops(commands), until=60.0
        )
        assert not outcome.unfinished
        assert sorted(outcome.commit_latency.values()) == [2.0, 2.0, 2.0, 2.0]

    def test_window_one_serializes_slots(self):
        # The pre-pipelining discipline: one slot in flight, so the same
        # submissions commit at 2, 4, 6, 8.
        commands = [_put(i) for i in range(4)]
        outcome = run_kv_workload(factory(), N, _ops(commands), until=60.0)
        assert not outcome.unfinished
        assert sorted(outcome.commit_latency.values()) == [2.0, 4.0, 6.0, 8.0]

    def test_pipelined_slots_apply_in_slot_order(self):
        commands = [_put(i, key=f"k{i % 2}") for i in range(8)]
        outcome = run_kv_workload(
            factory(window=4), N, _ops(commands), until=120.0
        )
        assert not outcome.unfinished
        for replica in outcome.replicas:
            applied = [c.command_id for c in replica.store.log]
            assert applied == [f"cmd-{i}" for i in range(8)]
        stores = [r.store.snapshot() for r in outcome.replicas]
        assert all(store == stores[0] for store in stores)
