"""Tests for the KV state machine and command ordering."""

import pytest

from repro.core import BOTTOM
from repro.smr import KVCommand, KVStore, NOOP_COMMAND


class TestCommandOrdering:
    def test_total_order(self):
        a = KVCommand(op="put", key="a", value=1, command_id="1")
        b = KVCommand(op="put", key="b", value=1, command_id="2")
        assert a < b
        assert b > a
        assert a <= a and a >= a

    def test_compares_above_bottom(self):
        command = KVCommand(op="get", key="k", command_id="1")
        assert command >= BOTTOM
        assert command > BOTTOM
        assert BOTTOM < command

    def test_distinct_ids_never_tie(self):
        a = KVCommand(op="put", key="k", value=1, command_id="1")
        b = KVCommand(op="put", key="k", value=1, command_id="2")
        assert a != b
        assert (a < b) != (b < a)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            KVCommand(op="frobnicate", key="k")


class TestStoreSemantics:
    def test_put_then_get(self):
        store = KVStore()
        assert store.apply(KVCommand(op="put", key="k", value=5, command_id="1")) == 5
        assert store.apply(KVCommand(op="get", key="k", command_id="2")) == 5

    def test_get_missing(self):
        store = KVStore()
        assert store.apply(KVCommand(op="get", key="nope", command_id="1")) is None

    def test_cas_success_and_failure(self):
        store = KVStore()
        store.apply(KVCommand(op="put", key="k", value=1, command_id="1"))
        ok = store.apply(
            KVCommand(op="cas", key="k", value=2, expected=1, command_id="2")
        )
        assert ok is True
        bad = store.apply(
            KVCommand(op="cas", key="k", value=9, expected=1, command_id="3")
        )
        assert bad is False
        assert store.data["k"] == 2

    def test_noop(self):
        store = KVStore()
        assert store.apply(NOOP_COMMAND) is None
        assert store.data == {}

    def test_duplicate_suppression(self):
        store = KVStore()
        command = KVCommand(op="put", key="k", value=1, command_id="1")
        store.apply(command)
        assert store.apply(command) == "duplicate"
        assert len(store.log) == 1

    def test_log_and_snapshot(self):
        store = KVStore()
        store.apply(KVCommand(op="put", key="a", value=1, command_id="1"))
        store.apply(KVCommand(op="put", key="b", value=2, command_id="2"))
        assert [c.command_id for c in store.log] == ["1", "2"]
        snap = store.snapshot()
        snap["a"] = 99
        assert store.data["a"] == 1  # snapshot is a copy


class TestDurableState:
    def test_snapshot_state_round_trip(self):
        store = KVStore()
        store.apply(KVCommand(op="put", key="a", value=1, command_id="1"))
        store.apply(KVCommand(op="cas", key="a", value=2, expected=1, command_id="2"))
        restored = KVStore.from_state(store.snapshot_state())
        assert restored.data == store.data
        assert restored.applied_ids == store.applied_ids
        assert restored.log == store.log

    def test_duplicate_suppression_survives_restore(self):
        store = KVStore()
        command = KVCommand(op="put", key="k", value=1, command_id="1")
        store.apply(command)
        restored = KVStore.from_state(store.snapshot_state())
        assert restored.apply(command) == "duplicate"
        assert len(restored.log) == 1

    def test_restored_store_is_independent(self):
        store = KVStore()
        store.apply(KVCommand(op="put", key="k", value=1, command_id="1"))
        restored = KVStore.from_state(store.snapshot_state())
        store.apply(KVCommand(op="put", key="k", value=9, command_id="2"))
        assert restored.data["k"] == 1
        assert len(restored.log) == 1
