"""The seeded workload generator and the E10 ``unfinished`` accounting.

``put_get_workload`` is now shared verbatim between the simulator's E10
harness and the live load generator (:mod:`repro.net.loadgen`), so its
determinism is a cross-runtime contract: the same ``(count, keys,
proxies, seed)`` must yield the identical command sequence everywhere.
"""

from typing import Iterator

from repro.analysis.experiments import e10_smr_rows
from repro.smr.client import put_get_workload


class TestPutGetWorkload:
    def test_same_seed_same_workload(self):
        a = put_get_workload(30, keys=("x", "y"), proxies=[0, 1, 2], seed=4)
        b = put_get_workload(30, keys=("x", "y"), proxies=[0, 1, 2], seed=4)
        assert a == b

    def test_different_seeds_differ(self):
        a = put_get_workload(30, keys=("x", "y"), proxies=[0, 1], seed=1)
        b = put_get_workload(30, keys=("x", "y"), proxies=[0, 1], seed=2)
        assert a != b

    def test_keys_accepts_any_iterable_shape(self):
        # The key pool is materialized once up front, so sequences that
        # are not lists — tuples, even one-shot iterators — work and give
        # the same stream as an equivalent list.
        def one_shot() -> Iterator[str]:
            yield "x"
            yield "y"

        from_list = put_get_workload(10, keys=["x", "y"], proxies=[0], seed=9)
        from_tuple = put_get_workload(10, keys=("x", "y"), proxies=[0], seed=9)
        from_iter = put_get_workload(10, keys=one_shot(), proxies=[0], seed=9)
        assert from_list == from_tuple == from_iter

    def test_proxy_assignment_is_round_robin(self):
        ops = put_get_workload(6, keys=("k",), proxies=[0, 1, 2], seed=0)
        assert [op.proxy for op in ops] == [0, 1, 2, 0, 1, 2]

    def test_command_ids_are_stable(self):
        ops = put_get_workload(3, keys=("k",), proxies=[0], seed=0)
        assert [op.command.command_id for op in ops] == [
            "cmd-0",
            "cmd-1",
            "cmd-2",
        ]


class TestUnfinishedAccounting:
    def test_truncated_run_surfaces_unfinished_commands(self):
        from repro.omega import static_omega_factory
        from repro.smr.client import run_kv_workload
        from repro.smr.log import smr_factory

        ops = put_get_workload(8, keys=("k",), proxies=[0, 1, 2], seed=0)
        # Cut the run off before the later commands can commit.
        outcome = run_kv_workload(
            smr_factory(1, 1, omega_factory=static_omega_factory(0)),
            n=3,
            ops=ops,
            until=5.0,
        )
        assert outcome.unfinished
        finished = set(outcome.commit_latency)
        assert finished.isdisjoint(outcome.unfinished)
        assert finished | set(outcome.unfinished) == {
            op.command.command_id for op in ops
        }


class TestE10Unfinished:
    def test_completed_run_reports_zero_unfinished(self):
        rows = e10_smr_rows(f=1, e=1, commands=6, use_wan=False)
        assert all("unfinished" in row for row in rows)
        assert all(row["unfinished"] == 0 for row in rows)
        total = next(row for row in rows if row["proxy"] == "ALL")
        assert total["commands"] == 6

    def test_per_proxy_unfinished_sums_to_total(self):
        rows = e10_smr_rows(f=1, e=1, commands=9, use_wan=False)
        total = next(row for row in rows if row["proxy"] == "ALL")
        per_proxy = [row for row in rows if row["proxy"] != "ALL"]
        assert sum(row["unfinished"] for row in per_proxy) == total["unfinished"]
        assert sum(row["commands"] for row in per_proxy) == total["commands"]
