"""Apply-time semantics of the shard config vocabulary.

The epoch-fencing rule lives in :meth:`repro.smr.kvstore.KVStore.apply`:
a replicated ``shard_prepare`` makes every replica refuse later data
commands for the fenced range *at apply time*, deterministically, without
logging them or marking their ids applied — which is exactly what lets a
command that raced into the log behind a fence commit in the range's new
home instead of being lost or double-applied.
"""

import pytest

from repro.smr.kvstore import (
    SHARD_META_PREFIX,
    WRONG_SHARD,
    KVCommand,
    KVStore,
    key_slot,
)

SLOTS = 16


def _fenced_key(lo: int = 0, hi: int = 8) -> str:
    for index in range(1000):
        key = f"key-{index}"
        if lo <= key_slot(key, SLOTS) < hi:
            return key
    raise AssertionError("no key hashed into the range")


def _unfenced_key(lo: int = 0, hi: int = 8) -> str:
    for index in range(1000):
        key = f"key-{index}"
        if not (lo <= key_slot(key, SLOTS) < hi):
            return key
    raise AssertionError("no key hashed outside the range")


def _prepare(epoch: int = 1, lo: int = 0, hi: int = 8, dest: int = 1) -> KVCommand:
    return KVCommand(
        op="config",
        key="",
        value={
            "kind": "shard_prepare",
            "lo": lo,
            "hi": hi,
            "slots": SLOTS,
            "epoch": epoch,
            "dest": dest,
        },
        command_id=f"__shard:prepare:{epoch}:{lo}-{hi}",
    )


def _install(
    epoch: int = 1,
    lo: int = 0,
    hi: int = 8,
    data=None,
    applied_ids=(),
    source: int = 0,
) -> KVCommand:
    return KVCommand(
        op="config",
        key="",
        value={
            "kind": "shard_install",
            "lo": lo,
            "hi": hi,
            "slots": SLOTS,
            "epoch": epoch,
            "source": source,
            "data": dict(data or {}),
            "applied_ids": list(applied_ids),
        },
        command_id=f"__shard:install:{epoch}:{lo}-{hi}",
    )


def _release(epoch: int = 1, lo: int = 0, hi: int = 8) -> KVCommand:
    return KVCommand(
        op="config",
        key="",
        value={
            "kind": "shard_release",
            "lo": lo,
            "hi": hi,
            "slots": SLOTS,
            "epoch": epoch,
        },
        command_id=f"__shard:release:{epoch}:{lo}-{hi}",
    )


def test_fence_refuses_data_commands_without_side_effects():
    store = KVStore()
    key = _fenced_key()
    assert store.apply(_prepare()) == "fenced"
    refused = KVCommand(op="put", key=key, value=1, command_id="c1")
    assert store.apply(refused) == WRONG_SHARD
    # Epoch fencing must leave zero trace: the command stays free to
    # commit (and count as first application) in the range's new home.
    assert "c1" not in store.applied_ids
    assert all(c.command_id != "c1" for c in store.log)
    assert key not in store.data
    # gets and cas are fenced identically.
    assert store.apply(KVCommand(op="get", key=key, command_id="c2")) == WRONG_SHARD
    assert (
        store.apply(KVCommand(op="cas", key=key, expected=None, value=2, command_id="c3"))
        == WRONG_SHARD
    )


def test_fence_spares_other_ranges_and_reserved_keys():
    store = KVStore()
    store.apply(_prepare())
    outside = _unfenced_key()
    assert store.apply(KVCommand(op="put", key=outside, value=7, command_id="c4")) == 7
    # Reserved (control-plane) keys are never routed, hence never fenced —
    # the catalog group must accept __placement__ writes regardless of map.
    assert (
        store.apply(KVCommand(op="put", key="__placement__", value={"epoch": 9}, command_id="c5"))
        == {"epoch": 9}
    )


def test_fence_applies_to_duplicates_first():
    # A command applied BEFORE the fence stays applied; re-application
    # after the fence is still a duplicate, not a refusal.
    store = KVStore()
    key = _fenced_key()
    command = KVCommand(op="put", key=key, value=1, command_id="c6")
    assert store.apply(command) == 1
    store.apply(_prepare())
    assert store.apply(command) == "duplicate"


def test_install_carries_data_and_applied_ids_and_reowns():
    source = KVStore()
    key = _fenced_key()
    source.apply(KVCommand(op="put", key=key, value="v", command_id="c7"))
    source.apply(_prepare())

    dest = KVStore()
    assert (
        dest.apply(_install(data={key: "v"}, applied_ids=["c7"]))
        == "installed"
    )
    assert dest.data[key] == "v"
    # Idempotence travels with the range: the same command retried at the
    # destination is a duplicate, not a second application.
    assert (
        dest.apply(KVCommand(op="put", key=key, value="v", command_id="c7"))
        == "duplicate"
    )
    # The destination now owns the range: no fence, commands apply.
    assert dest.fence_for(key) is None
    assert dest.apply(KVCommand(op="put", key=key, value="w", command_id="c8")) == "w"


def test_higher_epoch_install_unfences_a_returned_range():
    store = KVStore()
    key = _fenced_key()
    store.apply(_prepare(epoch=1))
    assert store.fence_for(key) is not None
    store.apply(_install(epoch=2, data={}, applied_ids=[]))
    assert store.fence_for(key) is None


def test_release_deletes_only_in_range_data_keys():
    store = KVStore()
    fenced, outside = _fenced_key(), _unfenced_key()
    store.apply(KVCommand(op="put", key=fenced, value=1, command_id="c9"))
    store.apply(KVCommand(op="put", key=outside, value=2, command_id="c10"))
    store.apply(_prepare())
    assert store.apply(_release()) == "released"
    assert fenced not in store.data
    assert store.data[outside] == 2
    # The fence entry itself survives (it is __-reserved): the source
    # keeps refusing strays for the range it gave away.
    assert store.fence_for(fenced) is not None


def test_config_commands_are_idempotent_by_id():
    store = KVStore()
    assert store.apply(_prepare()) == "fenced"
    assert store.apply(_prepare()) == "duplicate"
    version = store.data[SHARD_META_PREFIX + "version"]
    store.apply(_prepare())
    assert store.data[SHARD_META_PREFIX + "version"] == version


def test_shard_entries_sorted_by_epoch_and_cached():
    store = KVStore()
    store.apply(_install(epoch=3, lo=8, hi=12))
    store.apply(_prepare(epoch=1))
    entries = store.shard_entries()
    assert [info["epoch"] for _, info in entries] == [1, 3]
    assert store.shard_entries() is entries  # cache hit until next config


def test_commands_with_dict_values_are_hashable():
    # The consensus layer buckets fast-path votes by proposal value, so
    # config commands (dict payloads) must hash like any other command.
    command = _prepare()
    assert hash(command) == hash(
        KVCommand(op="config", key="", value={"different": True}, command_id=command.command_id)
    )
    assert len({command, _install(), _release()}) == 3


def test_shard_state_survives_snapshot_round_trip():
    store = KVStore()
    key = _fenced_key()
    store.apply(_prepare())
    restored = KVStore.from_state(store.snapshot_state())
    assert restored.fence_for(key) is not None
    assert restored.apply(KVCommand(op="put", key=key, value=1, command_id="c11")) == WRONG_SHARD


def test_wrong_shard_marker_is_reserved():
    with pytest.raises(ValueError):
        KVCommand(op="shard", key="x")  # unknown ops still rejected
    assert WRONG_SHARD.startswith("__")
