"""Tests for the Multi-Paxos SMR baseline."""

import pytest

from repro.core import ConfigurationError
from repro.omega import lowest_correct_omega_factory, static_omega_factory
from repro.smr import (
    KVCommand,
    MultiPaxosReplica,
    multipaxos_factory,
    put_get_workload,
    run_kv_workload,
)
from repro.smr.client import ClientOp
from repro.sim import CrashPlan

N, F = 5, 2


def factory(faulty=frozenset()):
    return multipaxos_factory(
        F, omega_factory=lowest_correct_omega_factory(set(faulty))
    )


class TestConfiguration:
    def test_requires_2f_plus_1(self):
        with pytest.raises(ConfigurationError):
            MultiPaxosReplica(0, 4, 2)

    def test_commands_need_ids(self):
        outcome = run_kv_workload(factory(), N, [], until=5.0)
        with pytest.raises(ConfigurationError):
            outcome.replicas[0].submit(
                _ctx(), KVCommand(op="put", key="k", value=1)
            )


def _ctx():
    class Ctx:
        now = 0.0

        def send(self, dst, message):
            pass

        def set_timer(self, name, delay):
            pass

        def cancel_timer(self, name):
            pass

        def decide(self, value):
            pass

    return Ctx()


class TestLatencyShape:
    def test_leader_proxy_commits_in_two_delays(self):
        ops = [
            ClientOp(0.0, 0, KVCommand(op="put", key="k", value=1, command_id="c0"))
        ]
        outcome = run_kv_workload(factory(), N, ops, until=60.0)
        assert outcome.commit_latency["c0"] == 2.0

    def test_remote_proxy_pays_forward_and_notify(self):
        ops = [
            ClientOp(0.0, 3, KVCommand(op="put", key="k", value=1, command_id="c0"))
        ]
        outcome = run_kv_workload(factory(), N, ops, until=60.0)
        # forward (1Δ) + 2A/2B (2Δ) + notify (1Δ)
        assert outcome.commit_latency["c0"] == 4.0

    def test_mixed_workload_completes(self):
        ops = put_get_workload(8, ["x", "y"], proxies=list(range(N)), spacing=5.0)
        outcome = run_kv_workload(factory(), N, ops, until=200.0)
        assert not outcome.unfinished
        stores = [r.store.snapshot() for r in outcome.replicas]
        assert all(store == stores[0] for store in stores)


class TestOrderingAndResults:
    def test_slot_order_matches_leader_arrival(self):
        ops = [
            ClientOp(0.0, 1, KVCommand(op="put", key="k", value=1, command_id="a")),
            ClientOp(0.2, 2, KVCommand(op="put", key="k", value=2, command_id="b")),
        ]
        outcome = run_kv_workload(factory(), N, ops, until=60.0)
        log = outcome.replicas[0].committed_log()
        assert [log[s].command_id for s in sorted(log)] == ["a", "b"]
        assert all(r.store.snapshot() == {"k": 2} for r in outcome.replicas)

    def test_read_results_reflect_prior_writes(self):
        ops = [
            ClientOp(0.0, 0, KVCommand(op="put", key="k", value=9, command_id="w")),
            ClientOp(6.0, 2, KVCommand(op="get", key="k", command_id="r")),
        ]
        outcome = run_kv_workload(factory(), N, ops, until=80.0)
        assert outcome.results["r"] == 9

    def test_no_duplicate_commands_in_log(self):
        ops = put_get_workload(6, ["x"], proxies=[0, 1, 2], spacing=1.0)
        outcome = run_kv_workload(factory(), N, ops, until=200.0)
        log = outcome.replicas[0].committed_log()
        ids = [c.command_id for c in log.values() if not c.command_id.startswith("__")]
        assert len(ids) == len(set(ids))


class TestLeaderFailure:
    def test_view_change_recovers_commands(self):
        ops = put_get_workload(4, ["x"], proxies=[1, 2, 3, 4], spacing=3.0)
        outcome = run_kv_workload(
            factory(faulty={0}), N, ops, until=400.0, crashes=CrashPlan.at(1.0, [0])
        )
        assert not outcome.unfinished
        live = [r for r in outcome.replicas if r.pid != 0]
        logs = [
            {s: c.command_id for s, c in replica.decided.items()} for replica in live
        ]
        assert all(log == logs[0] for log in logs)

    def test_in_flight_command_survives_leader_crash(self):
        # The command reaches the leader, 2As go out, leader dies before
        # deciding; the new leader must adopt the accepted value.
        ops = [
            ClientOp(0.0, 1, KVCommand(op="put", key="k", value=7, command_id="c0"))
        ]
        outcome = run_kv_workload(
            factory(faulty={0}),
            N,
            ops,
            until=400.0,
            crashes=CrashPlan.at(1.5, [0]),  # after accepting, before quorum
        )
        assert "c0" in outcome.commit_latency
        live = [r for r in outcome.replicas if r.pid != 0]
        assert all(r.store.snapshot().get("k") == 7 for r in live)

    def test_no_two_step_commit_for_any_proxy_when_leader_down(self):
        # The paper's contrast: a leader-based SMR cannot give any client
        # a fast answer while the leader is being replaced.
        ops = [
            ClientOp(0.0, 2, KVCommand(op="put", key="k", value=1, command_id="c0"))
        ]
        outcome = run_kv_workload(
            factory(faulty={0}), N, ops, until=400.0, crashes=CrashPlan.at_start([0])
        )
        assert outcome.commit_latency.get("c0", 99.0) > 2.0
