"""Tests for the SMR layer: proxies, slot races, gap repair, consistency."""

import pytest

from repro.core import ConfigurationError
from repro.omega import static_omega_factory
from repro.smr import (
    KVCommand,
    SMRReplica,
    check_logs_consistent,
    put_get_workload,
    run_kv_workload,
    smr_factory,
)
from repro.sim import CrashPlan, FixedLatency

N, F, E = 5, 2, 2


def factory():
    return smr_factory(F, E, omega_factory=static_omega_factory(0))


class TestConfiguration:
    def test_bound_applies(self):
        with pytest.raises(ConfigurationError):
            SMRReplica(0, 4, F, E)

    def test_task_config_rejected(self):
        from repro.protocols import TwoStepConfig

        with pytest.raises(ConfigurationError, match="object"):
            SMRReplica(0, 5, F, E, consensus_config=TwoStepConfig(f=F, e=E))

    def test_command_needs_id(self):
        outcome = run_kv_workload(factory(), N, [], until=5.0)
        replica = outcome.replicas[0]
        with pytest.raises(ConfigurationError, match="command_id"):
            replica.submit(_FakeCtx(), KVCommand(op="put", key="k", value=1))


class _FakeCtx:
    now = 0.0
    pid = 0
    n = N

    def send(self, dst, message):
        pass

    def set_timer(self, name, delay):
        pass

    def cancel_timer(self, name):
        pass

    def decide(self, value):
        pass

    @property
    def others(self):
        return []


class TestUncontended:
    def test_fast_path_commit_in_two_delays(self):
        ops = put_get_workload(6, ["x", "y"], proxies=list(range(N)), spacing=4.0)
        outcome = run_kv_workload(factory(), N, ops, until=80.0)
        assert not outcome.unfinished
        assert all(lat == 2.0 for lat in outcome.commit_latency.values())

    def test_results_correct(self):
        ops = [
            _op(0.0, 0, KVCommand(op="put", key="k", value=7, command_id="w")),
            _op(6.0, 1, KVCommand(op="get", key="k", command_id="r")),
        ]
        outcome = run_kv_workload(factory(), N, ops, until=60.0)
        assert outcome.results["w"] == 7
        assert outcome.results["r"] == 7

    def test_logs_consistent(self):
        ops = put_get_workload(8, ["x"], proxies=list(range(N)), spacing=3.0)
        outcome = run_kv_workload(factory(), N, ops, until=100.0)
        assert check_logs_consistent(outcome.replicas) == []

    def test_stores_converge(self):
        ops = put_get_workload(6, ["x", "y"], proxies=list(range(N)), spacing=3.0)
        outcome = run_kv_workload(factory(), N, ops, until=100.0)
        stores = [r.store.snapshot() for r in outcome.replicas]
        assert all(store == stores[0] for store in stores)


def _op(time, proxy, command):
    from repro.smr.client import ClientOp

    return ClientOp(time=time, proxy=proxy, command=command)


class TestContended:
    def test_slot_races_resolve(self):
        ops = put_get_workload(6, ["x"], proxies=[0, 1, 2], spacing=0.0)
        outcome = run_kv_workload(factory(), N, ops, until=200.0)
        assert not outcome.unfinished
        assert check_logs_consistent(outcome.replicas) == []

    def test_losers_eventually_commit(self):
        ops = put_get_workload(4, ["x"], proxies=[0, 1], spacing=0.0)
        outcome = run_kv_workload(factory(), N, ops, until=200.0)
        # Every command committed exactly once across the log.
        log = outcome.replicas[0].committed_log()
        ids = [c.command_id for c in log.values() if not c.command_id.startswith("__")]
        assert sorted(ids) == sorted(op.command.command_id for op in ops)

    def test_no_duplicate_application(self):
        ops = put_get_workload(4, ["x"], proxies=[0, 1], spacing=0.0)
        outcome = run_kv_workload(factory(), N, ops, until=200.0)
        for replica in outcome.replicas:
            applied = [c.command_id for c in replica.store.log]
            assert len(applied) == len(set(applied))


class TestCrashes:
    def test_proxy_crash_spares_other_commands(self):
        ops = put_get_workload(6, ["x", "y"], proxies=[0, 1, 2], spacing=2.0)
        outcome = run_kv_workload(
            factory(), N, ops, until=300.0, crashes=CrashPlan.at(1.0, [1])
        )
        dead_proxy_cmds = {op.command.command_id for op in ops if op.proxy == 1}
        assert set(outcome.unfinished) <= dead_proxy_cmds
        live = [r for r in outcome.replicas if r.pid != 1]
        assert check_logs_consistent(live) == []

    def test_gap_repair_unblocks_log(self):
        # Proxy 1 crashes mid-propose; later slots decide; the leader's
        # gap repair noops the stuck slot so application proceeds.
        ops = put_get_workload(5, ["x", "y"], proxies=[0, 1, 2, 3], spacing=2.0)
        outcome = run_kv_workload(
            factory(), N, ops, until=400.0, crashes=CrashPlan.at(2.5, [1])
        )
        live = [r for r in outcome.replicas if r.pid != 1]
        decided_slots = set(live[0].decided)
        if decided_slots:
            horizon = max(decided_slots)
            for replica in live:
                assert replica.applied_upto >= horizon, (
                    f"replica {replica.pid} stuck at {replica.applied_upto}"
                )

    def test_e_crashes_still_fast_for_survivors(self):
        ops = [
            _op(30.0, 2, KVCommand(op="put", key="k", value=1, command_id="late")),
        ]
        outcome = run_kv_workload(
            factory(), N, ops, until=120.0, crashes=CrashPlan.at_start([3, 4])
        )
        assert outcome.commit_latency.get("late") == 2.0


def _put(slot, cid=None):
    return KVCommand(
        op="put", key=f"k{slot % 2}", value=slot, command_id=cid or f"c{slot}"
    )


class TestDurabilitySeams:
    """The offline restore/truncate surface ``repro.storage`` drives."""

    def _replica(self, pid=0):
        return SMRReplica(pid, N, F, E)

    def test_restore_decided_applies_ready_prefix(self):
        replica = self._replica()
        assert replica.restore_decided(1, _put(1))  # gap at 0: nothing applies
        assert replica.applied_upto == 0
        assert replica.restore_decided(0, _put(0))  # gap closes: both apply
        assert replica.applied_upto == 2
        assert [c.command_id for c in replica.store.log] == ["c0", "c1"]

    def test_restore_decided_rejects_stale_and_duplicate(self):
        replica = self._replica()
        replica.restore_decided(0, _put(0))
        assert not replica.restore_decided(0, _put(0))  # already decided
        replica.truncate_below(replica.applied_upto)
        assert not replica.restore_decided(0, _put(0))  # below the frontier

    def test_truncate_at_boundary(self):
        replica = self._replica()
        for slot in range(3):
            replica.restore_decided(slot, _put(slot))
        assert replica.truncate_below(replica.applied_upto) == 3
        assert replica.decided == {}
        assert replica._slots == {}
        # The applied log — the convergence witness — is untouched.
        assert [c.command_id for c in replica.store.log] == ["c0", "c1", "c2"]
        # Truncation is idempotent and capped at the frontier.
        assert replica.truncate_below(10_000) == 0

    def test_truncate_then_append(self):
        replica = self._replica()
        for slot in range(3):
            replica.restore_decided(slot, _put(slot))
        replica.truncate_below(replica.applied_upto)
        assert replica.restore_decided(3, _put(3))
        assert replica.applied_upto == 4
        assert [c.command_id for c in replica.store.log][-1] == "c3"

    def test_restore_then_decide(self):
        replica = self._replica()
        vote = _put(0, cid="journaled")
        assert replica.restore_slot_state(
            0, bal=2, vbal=1, value=vote, initial_value=vote, sent_twoa=(0, 2)
        )
        inner = replica._slots[0]
        assert (inner.bal, inner.vbal, inner.val) == (2, 1, vote)
        assert inner._sent_twoa == {0, 2}
        # A later WAL record decides the same slot: it applies normally.
        assert replica.restore_decided(0, vote)
        assert replica.applied_upto == 1
        assert replica.store.log[-1].command_id == "journaled"
        # And replaying the (older) slot-state record is now a no-op.
        assert not replica.restore_slot_state(
            0, bal=2, vbal=1, value=vote, initial_value=vote
        )

    def test_truncation_requeues_uncommitted_proposal(self):
        replica = self._replica()
        mine = _put(0, cid="mine")
        replica.restore_slot_state(0, bal=0, vbal=-1, value=mine, initial_value=mine)
        assert replica._inflight[0] == mine
        # A state transfer jumps the frontier past our losing slot.
        donor = self._replica(pid=1)
        for slot in range(5):
            donor.restore_decided(slot, _put(slot, cid=f"peer{slot}"))
        replica.restore_store(donor.store.snapshot_state(), 5)
        replica.truncate_below(replica.applied_upto)
        # Our never-committed command went back to the proposal queue.
        assert [c.command_id for c in replica._queue] == ["mine"]
