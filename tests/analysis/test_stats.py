"""Tests for the statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import Summary, mean, percentile, ratio, summarize


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 50) == 5.0
        assert percentile([5.0], 99) == 5.0

    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = [3, 1, 4, 1, 5]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_bounded_by_min_max(self, data):
        for q in (0, 25, 50, 75, 100):
            assert min(data) <= percentile(data, q) <= max(data)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2))
    def test_monotone_in_q(self, data):
        values = [percentile(data, q) for q in (0, 50, 95, 100)]
        tolerance = 1e-9 * max(1.0, max(data))
        for lower, higher in zip(values, values[1:]):
            assert lower <= higher + tolerance


class TestSummarize:
    def test_empty_returns_none(self):
        assert summarize([]) is None

    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.p50 == 2.0

    def test_format(self):
        text = summarize([1, 2]).format()
        assert "n=2" in text and "mean=1.5" in text

    def test_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            mean([])


class TestRatio:
    def test_normal(self):
        assert ratio(4, 2) == 2.0

    def test_zero_denominator(self):
        assert math.isinf(ratio(1, 0))
        assert ratio(0, 0) == 1.0
