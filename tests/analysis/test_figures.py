"""Tests for the ASCII figure renderer."""

import pytest

from repro.analysis import bar_chart, line_chart, series
from repro.analysis.figures import Series


class TestSeries:
    def test_builder(self):
        s = series("a", [(1, 2), (3, 4)])
        assert s.xs == (1.0, 3.0)
        assert s.ys == (2.0, 4.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("a", (1, 2), (1,))


class TestLineChart:
    def test_empty(self):
        assert "(no data)" in line_chart([], title="x")

    def test_contains_title_and_legend(self):
        text = line_chart([series("lat", [(0, 1), (1, 2)])], title="T")
        assert text.startswith("T\n=")
        assert "legend: o lat" in text

    def test_extremes_labelled(self):
        text = line_chart([series("s", [(0, 10), (5, 50)])])
        assert "50" in text and "10" in text
        assert "0" in text and "5" in text

    def test_marks_distinct_per_series(self):
        text = line_chart(
            [series("a", [(0, 0), (1, 1)]), series("b", [(0, 1), (1, 0)])]
        )
        assert "o a" in text and "x b" in text

    def test_constant_series_does_not_crash(self):
        text = line_chart([series("flat", [(0, 2), (1, 2), (2, 2)])])
        assert "flat" in text

    def test_single_point(self):
        text = line_chart([series("dot", [(1, 1)])])
        assert "o" in text

    def test_grid_dimensions(self):
        text = line_chart([series("s", [(0, 0), (9, 9)])], width=30, height=8)
        plot_lines = [line for line in text.splitlines() if "|" in line]
        assert len(plot_lines) == 8


class TestBarChart:
    def test_empty(self):
        assert "(no data)" in bar_chart({})

    def test_bars_scale_with_values(self):
        text = bar_chart({"small": 1.0, "big": 10.0}, width=20)
        small = next(l for l in text.splitlines() if "small" in l)
        big = next(l for l in text.splitlines() if "big" in l)
        assert big.count("#") > small.count("#")

    def test_unit_suffix(self):
        assert "ms" in bar_chart({"a": 5.0}, unit="ms")

    def test_zero_value_gets_empty_bar(self):
        text = bar_chart({"zero": 0.0, "one": 1.0})
        zero_line = next(l for l in text.splitlines() if "zero" in l)
        assert "#" not in zero_line
