"""Tests for the `python -m repro` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out and "e10" in out

    def test_bounds(self, capsys):
        assert main(["bounds"]) == 0
        out = capsys.readouterr().out
        assert "lamport" in out and "object(Thm6)" in out

    def test_experiment_e1(self, capsys):
        assert main(["experiment", "e1"]) == 0
        assert "E1" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_witness_task(self, capsys):
        assert main(["witness", "task", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "AGREEMENT VIOLATION" in out

    def test_witness_object(self, capsys):
        assert main(["witness", "object", "3", "3"]) == 0
        assert "AGREEMENT VIOLATION" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestJsonOutput:
    def test_bounds_json_parses(self, capsys):
        assert main(["bounds", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "e1"
        (rows,) = payload["tables"].values()
        assert rows and {"f", "e", "lamport"} <= set(rows[0])

    def test_experiment_json_parses(self, capsys):
        assert main(["experiment", "e1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) >= {"tables"}
        (rows,) = payload["tables"].values()
        assert isinstance(rows, list) and isinstance(rows[0], dict)

    def test_experiment_json_matches_text_rows(self, capsys):
        # The JSON rows are the same records the text tables render.
        assert main(["experiment", "e2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["tables"]) == 2  # E2 prints two tables

    def test_unknown_experiment_still_errors_with_json(self, capsys):
        assert main(["experiment", "e99", "--json"]) == 2
        assert "unknown experiment" in capsys.readouterr().out


class TestClusterCli:
    def test_node_mode_requires_peers(self, capsys):
        assert main(["cluster", "--node", "0"]) == 2
        assert "--peers" in capsys.readouterr().out

    def test_loadgen_parser_defaults(self):
        args = build_parser().parse_args(
            ["loadgen", "--peers", "127.0.0.1:9400,127.0.0.1:9401"]
        )
        assert args.clients == 4
        assert args.count == 100
        assert args.json is False


class TestReport:
    def test_report_quick_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--quick", "-o", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("# Reproduction report")
        assert text.count("**Verdict:**") == 11
        assert "AGREEMENT VIOLATION (as the theorem predicts)" in text
        assert "SATISFIED" in text

    def test_generate_report_function(self):
        from repro.analysis import generate_report

        text = generate_report(quick=True)
        assert "E1 — bounds table" in text
        assert "E10 — geo-replicated KV service" in text
