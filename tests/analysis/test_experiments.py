"""Tests for the E1-E10 experiment harness: shapes and headline claims.

Each experiment must not only run — its output must show the *shape* the
paper claims: who wins, by how much, where the separations fall.
"""

import pytest

from repro.analysis import (
    e1_bounds_rows,
    e3_two_step_coverage_rows,
    e4_latency_vs_conflict_rows,
    e5_wan_rows,
    e6_recovery_rows,
    e7_message_rows,
    e8_epaxos_rows,
    e9_ablation_rows,
    e9_liveness_completion_demo,
    e10_smr_rows,
)


class TestE1Bounds:
    def test_savings_grow_with_e(self):
        rows = e1_bounds_rows(4)
        by_fe = {(r["f"], r["e"]): r for r in rows}
        assert by_fe[(2, 2)]["saved_object"] == 2
        assert by_fe[(2, 2)]["saved_task"] == 1
        assert by_fe[(4, 4)]["object(Thm6)"] < by_fe[(4, 4)]["lamport"]

    def test_object_never_above_task(self):
        for row in e1_bounds_rows(5):
            assert row["object(Thm6)"] <= row["task(Thm5)"] <= row["lamport"]


class TestE3Coverage:
    def test_paxos_partial_fast_protocols_full(self):
        rows = e3_two_step_coverage_rows(f_values=(1,))
        by_protocol = {r["protocol"]: r for r in rows}
        assert by_protocol["paxos"]["coverage"] < 1.0
        assert by_protocol["fast-paxos"]["coverage"] == 1.0
        assert by_protocol["twostep-task"]["coverage"] == 1.0

    def test_twostep_uses_fewer_processes_than_fast_paxos(self):
        rows = e3_two_step_coverage_rows(f_values=(1, 2))
        for f in (1, 2):
            fp = next(r for r in rows if r["f"] == f and r["protocol"] == "fast-paxos")
            ts = next(
                r for r in rows if r["f"] == f and r["protocol"] == "twostep-task"
            )
            assert ts["n"] < fp["n"]


class TestE4Conflict:
    def test_best_schedule_always_two_steps(self):
        rows = e4_latency_vs_conflict_rows(seeds=(1, 2))
        for row in rows:
            if row["schedule"] == "best":
                assert row["first_decision_mean"] == 2.0
                assert row["fast_fraction"] == 1.0

    def test_random_schedules_degrade(self):
        rows = e4_latency_vs_conflict_rows(seeds=(1, 2, 3))
        random_rows = [r for r in rows if r["schedule"] == "random"]
        assert any(r["fast_fraction"] < 1.0 for r in random_rows)


class TestE5Wan:
    def test_growing_bound_costs_latency(self):
        rows = e5_wan_rows(f=2, e=2)
        means = [row["measured_mean_ms"] for row in rows]
        assert means[0] < means[2], "object bound must beat Lamport's bound"

    def test_prediction_matches_measurement(self):
        for row in e5_wan_rows(f=2, e=2):
            assert row["measured_mean_ms"] == pytest.approx(
                row["predicted_mean_ms"], rel=1e-6
            )


class TestE6Recovery:
    def test_sound_at_bound_unsound_below(self):
        rows = e6_recovery_rows(
            configs=((2, 2, False), (3, 3, True)), trials=1500
        )
        for row in rows:
            if row["where"] == "at bound":
                assert row["recovery_failures"] == 0, row
            else:
                assert row["recovery_failures"] > 0, row


class TestE7Messages:
    def test_all_protocols_reported(self):
        rows = e7_message_rows()
        assert {r["protocol"] for r in rows} == {
            "paxos",
            "fast-paxos",
            "twostep-task",
        }

    def test_everyone_decides_fast_in_happy_runs(self):
        for row in e7_message_rows():
            assert row["all_decided_by"] <= 3.0


class TestE8EPaxos:
    def test_conflict_free_is_fast_at_2f_plus_1(self):
        rows = e8_epaxos_rows(f_values=(1, 2), conflict_rates=(0.0,))
        for row in rows:
            assert row["n"] == 2 * row["f"] + 1
            assert row["fast_fraction"] == 1.0
            assert row["commit_mean"] == 2.0

    def test_full_conflict_is_slow(self):
        rows = e8_epaxos_rows(f_values=(1,), conflict_rates=(1.0,))
        assert rows[0]["fast_fraction"] == 0.0
        assert rows[0]["commit_mean"] > 2.0


class TestE9Ablations:
    def test_paper_policy_clean(self):
        rows = e9_ablation_rows(trials=800)
        paper = next(r for r in rows if r["ablation"] == "paper (none)")
        assert paper["two_step_ok"]
        assert paper["recovery_failures_task"] == 0
        assert paper["recovery_failures_object"] == 0

    def test_each_ablation_breaks_something(self):
        rows = e9_ablation_rows(trials=2500)
        for row in rows:
            if row["ablation"] == "paper (none)":
                continue
            broke = (
                not row["two_step_ok"]
                or row["recovery_failures_task"] > 0
                or row["recovery_failures_object"] > 0
            )
            assert broke, f"ablation {row['ablation']} broke nothing"

    def test_liveness_completion_demo(self):
        outcome = e9_liveness_completion_demo()
        assert outcome["with_completion_decides"] == 5
        assert outcome["without_completion_decides"] is None


class TestE10Smr:
    def test_lan_commit_latency_two_delays(self):
        rows = e10_smr_rows(use_wan=False, commands=6)
        total = next(r for r in rows if r["proxy"] == "ALL")
        assert total["commit_mean"] == 2.0

    def test_wan_rows_cover_all_proxies(self):
        rows = e10_smr_rows(use_wan=True, commands=5)
        proxies = [r["proxy"] for r in rows]
        assert "ALL" in proxies
        assert len(proxies) == 6  # 5 proxies + ALL
