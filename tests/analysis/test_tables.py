"""Tests for the table renderer."""

from repro.analysis import render_records, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "n"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len({len(line) for line in lines if line}) <= 2  # header may be shorter
        assert "long-name" in text

    def test_title_and_rule(self):
        text = render_table(["x"], [[1]], title="T1")
        assert text.splitlines()[0] == "T1"
        assert text.splitlines()[1] == "=="

    def test_float_formatting(self):
        text = render_table(["v"], [[1.23456]], float_digits=2)
        assert "1.23" in text

    def test_none_rendered_as_dash(self):
        assert "-" in render_table(["v"], [[None]])

    def test_bools(self):
        text = render_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text


class TestRenderRecords:
    def test_columns_from_first_record(self):
        text = render_records([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        header = text.splitlines()[0]
        assert header.split() == ["a", "b"]

    def test_explicit_columns(self):
        text = render_records([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_empty(self):
        assert "(empty)" in render_records([], title="nothing")

    def test_missing_keys_dash(self):
        text = render_records([{"a": 1, "b": 2}, {"a": 3}])
        assert "-" in text
