"""WAL framing, group commit, and torn-tail recovery.

The hypothesis properties pin the two contracts the crash-recovery path
leans on: records round-trip bit-exactly through the frame format (and
typed records through the wire codec), and a segment truncated at *any*
byte boundary reopens to exactly the prefix of fully-written records —
never an exception, never a phantom record.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import BOTTOM
from repro.net.codec import MessageCodec
from repro.smr.kvstore import KVCommand
from repro.storage import WalDecision, WalSlotState, decode_record, encode_record
from repro.storage.wal import (
    MAX_RECORD_BYTES,
    WriteAheadLog,
    list_segments,
    next_segment_seq,
    pack_record,
    replay_directory,
    scan_segment,
    segment_name,
    segment_seq,
)

CODEC = MessageCodec()


class TestSegmentNaming:
    def test_name_round_trip(self, tmp_path):
        assert segment_name(7) == "wal-00000007.log"
        assert segment_seq(tmp_path / segment_name(7)) == 7

    def test_foreign_files_ignored(self, tmp_path):
        (tmp_path / "wal-0000000x.log").write_bytes(b"junk")
        (tmp_path / "notes.txt").write_bytes(b"junk")
        (tmp_path / segment_name(3)).write_bytes(b"")
        assert [segment_seq(p) for p in list_segments(tmp_path)] == [3]

    def test_next_seq(self, tmp_path):
        assert next_segment_seq(tmp_path) == 1
        (tmp_path / segment_name(1)).write_bytes(b"")
        (tmp_path / segment_name(4)).write_bytes(b"")
        assert next_segment_seq(tmp_path) == 5


class TestWriteAheadLog:
    def test_append_is_buffered_until_commit(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path, 1, fsync=False)
        wal.append(b"alpha")
        wal.append(b"beta")
        assert wal.pending_records == 2
        # Nothing on disk until the group commit.
        assert scan_segment(wal.path).payloads == ()
        assert wal.commit() == 2
        assert wal.pending_records == 0
        assert scan_segment(wal.path).payloads == (b"alpha", b"beta")
        wal.close()

    def test_commit_without_pending_is_noop(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path, 1, fsync=False)
        assert wal.commit() == 0
        wal.close()

    def test_abandon_drops_uncommitted_records(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path, 1, fsync=False)
        wal.append(b"durable")
        wal.commit()
        wal.append(b"lost-at-sigkill")
        wal.abandon()
        assert scan_segment(wal.path).payloads == (b"durable",)

    def test_close_commits_the_tail(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path, 1, fsync=False)
        wal.append(b"tail")
        wal.close()
        assert scan_segment(wal.path).payloads == (b"tail",)

    def test_writer_never_appends_to_existing_segment(self, tmp_path):
        WriteAheadLog.create(tmp_path, 1, fsync=False).close()
        with pytest.raises(FileExistsError):
            WriteAheadLog.create(tmp_path, 1, fsync=False)

    def test_closed_segment_rejects_appends(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path, 1, fsync=False)
        wal.close()
        with pytest.raises(ValueError):
            wal.append(b"late")

    def test_oversize_record_rejected(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path, 1, fsync=False)
        with pytest.raises(ValueError):
            wal.append(b"x" * (MAX_RECORD_BYTES + 1))
        wal.close()

    def test_fsync_mode_records_fsync_counters(self, tmp_path):
        from repro.obs import Observability

        obs = Observability(node=0)
        wal = WriteAheadLog.create(tmp_path, 1, fsync=True, obs=obs)
        wal.append(b"one")
        wal.append(b"two")
        wal.commit()
        wal.close()
        counters = obs.registry.snapshot()["counters"]
        assert counters["storage.wal_appends"] == 2
        # One group commit, hence one fsync for both records.
        assert counters["storage.wal_commits"] == 1
        assert counters["storage.wal_fsyncs"] == 1


class TestTornTail:
    def test_garbage_tail_truncates_cleanly(self, tmp_path):
        path = tmp_path / segment_name(1)
        path.write_bytes(pack_record(b"good") + b"\x00\x01partial")
        result = scan_segment(path)
        assert result.payloads == (b"good",)
        assert result.torn

    def test_corrupt_crc_ends_the_scan(self, tmp_path):
        path = tmp_path / segment_name(1)
        frames = pack_record(b"first") + pack_record(b"second")
        # Flip one payload byte of the second record: its CRC fails, the
        # scan keeps the first record and reports a torn tail.
        mutated = bytearray(frames)
        mutated[-1] ^= 0xFF
        path.write_bytes(bytes(mutated))
        result = scan_segment(path)
        assert result.payloads == (b"first",)
        assert result.torn

    def test_absurd_length_treated_as_torn(self, tmp_path):
        path = tmp_path / segment_name(1)
        path.write_bytes(
            pack_record(b"ok") + (MAX_RECORD_BYTES + 1).to_bytes(4, "big") + b"\x00" * 64
        )
        result = scan_segment(path)
        assert result.payloads == (b"ok",)
        assert result.torn

    def test_replay_directory_orders_and_counts_torn(self, tmp_path):
        (tmp_path / segment_name(2)).write_bytes(pack_record(b"late") + b"torn")
        (tmp_path / segment_name(1)).write_bytes(pack_record(b"early"))
        payloads, torn = replay_directory(tmp_path)
        assert payloads == [b"early", b"late"]
        assert torn == 1


# ----------------------------------------------------------------------
# Properties.
# ----------------------------------------------------------------------

_payloads = st.lists(st.binary(max_size=64), max_size=8)


class TestProperties:
    @given(payloads=_payloads)
    @settings(max_examples=60, deadline=None)
    def test_committed_records_round_trip(self, tmp_path_factory, payloads):
        directory = tmp_path_factory.mktemp("wal")
        wal = WriteAheadLog.create(directory, 1, fsync=False)
        for payload in payloads:
            wal.append(payload)
        wal.close()
        result = scan_segment(wal.path)
        assert result.payloads == tuple(payloads)
        assert not result.torn

    @given(payloads=_payloads, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_any_truncation_reopens_to_exact_prefix(
        self, tmp_path_factory, payloads, data
    ):
        """Cutting the file at any byte yields the fully-written prefix."""
        frames = [pack_record(payload) for payload in payloads]
        blob = b"".join(frames)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob)))
        path = tmp_path_factory.mktemp("wal") / segment_name(1)
        path.write_bytes(blob[:cut])
        result = scan_segment(path)
        # Expected: every record whose full frame fits below the cut.
        expected, offset = [], 0
        for payload, frame in zip(payloads, frames):
            if offset + len(frame) > cut:
                break
            expected.append(payload)
            offset += len(frame)
        assert result.payloads == tuple(expected)
        assert result.good_bytes == offset
        assert result.torn == (offset != cut)

    @given(
        slot=st.integers(min_value=0, max_value=2**31),
        op=st.sampled_from(["put", "get", "cas"]),
        key=st.text(max_size=8),
        value=st.one_of(st.none(), st.integers(-5, 5), st.text(max_size=8)),
        command_id=st.text(max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_decision_records_round_trip_through_codec(
        self, slot, op, key, value, command_id
    ):
        record = WalDecision(
            slot=slot,
            value=KVCommand(op=op, key=key, value=value, command_id=command_id),
        )
        assert decode_record(CODEC, encode_record(CODEC, record)) == record

    @given(
        slot=st.integers(min_value=0, max_value=2**31),
        bal=st.integers(min_value=0, max_value=50),
        vbal=st.integers(min_value=-1, max_value=50),
        voted=st.booleans(),
        sent_twoa=st.lists(st.integers(0, 20), max_size=4, unique=True),
    )
    @settings(max_examples=60, deadline=None)
    def test_slot_state_records_round_trip_through_codec(
        self, slot, bal, vbal, voted, sent_twoa
    ):
        vote = KVCommand(op="put", key="k", value=1, command_id="c") if voted else BOTTOM
        record = WalSlotState(
            slot=slot,
            bal=bal,
            vbal=vbal,
            value=vote,
            initial_value=BOTTOM,
            sent_twoa=tuple(sorted(sent_twoa)),
        )
        assert decode_record(CODEC, encode_record(CODEC, record)) == record
