"""Snapshot round-trip, persister recovery cycle, retention, transfer.

These tests drive :class:`~repro.storage.recovery.ReplicaPersister`
against real :class:`~repro.smr.log.SMRReplica` instances entirely
offline (no event loop): journal → crash → recover must rebuild the
identical store, and a snapshot must bound what the WAL replays.
"""

import pytest

from repro.core.values import BOTTOM
from repro.net.codec import MessageCodec
from repro.obs import Observability
from repro.smr.kvstore import KVCommand
from repro.smr.log import SMRReplica
from repro.storage import (
    NodeStorage,
    ReplicaPersister,
    RetentionPolicy,
    WalDecision,
    WalSlotState,
    decode_record,
    deserialize_replica_state,
    inspect_data_dir,
    install_state,
    list_segments,
    list_snapshots,
    scan_segment,
    serialize_replica_state,
)
from repro.storage.snapshot import snapshot_name
from repro.storage.wal import segment_name

N, F, E = 5, 2, 2
CODEC = MessageCodec()


def _replica(pid=0):
    return SMRReplica(pid, N, F, E)


def _command(slot, prefix="c"):
    return KVCommand(op="put", key=f"k{slot % 3}", value=slot, command_id=f"{prefix}{slot}")


def _decide(replica, slots):
    for slot in slots:
        assert replica.restore_decided(slot, _command(slot))


def _persister(tmp_path, replica, pid=0, **kwargs):
    kwargs.setdefault("fsync", False)
    kwargs.setdefault("snapshot_every", 10_000)
    storage = NodeStorage(tmp_path, pid)
    return ReplicaPersister(storage, replica, CODEC, **kwargs)


class TestSnapshotRoundTrip:
    def test_replica_state_round_trips(self):
        a = _replica()
        _decide(a, range(5))
        state = deserialize_replica_state(CODEC, serialize_replica_state(CODEC, a))
        assert state["applied_upto"] == 5
        assert state["log_entries"] == 5
        b = _replica(pid=1)
        b.restore_store(state["store"], state["applied_upto"])
        assert b.store.data == a.store.data
        assert b.store.applied_ids == a.store.applied_ids
        assert [c.command_id for c in b.store.log] == [
            c.command_id for c in a.store.log
        ]

    def test_decided_tail_survives(self):
        a = _replica()
        _decide(a, range(3))
        # Slot 4 decided but slot 3 missing: 4 stays in the unapplied tail.
        assert a.restore_decided(4, _command(4))
        assert a.applied_upto == 3
        state = deserialize_replica_state(CODEC, serialize_replica_state(CODEC, a))
        assert set(state["decided_tail"]) == {4}


class TestPersisterCycle:
    def test_journal_crash_recover_rebuilds_the_store(self, tmp_path):
        a = _replica()
        persister = _persister(tmp_path, a)
        assert not persister.recover().recovered_anything
        _decide(a, range(5))
        persister.after_activation()
        persister.close()

        b = _replica()
        recovered = _persister(tmp_path, b).recover()
        assert recovered.snapshot is None
        assert recovered.replayed_entries == 5
        assert b.applied_upto == 5
        assert b.store.data == a.store.data
        assert [c.command_id for c in b.store.log] == [
            c.command_id for c in a.store.log
        ]

    def test_recovery_rolls_replay_into_a_snapshot(self, tmp_path):
        a = _replica()
        persister = _persister(tmp_path, a)
        persister.recover()
        _decide(a, range(4))
        persister.after_activation()
        persister.close()

        _persister(tmp_path, _replica()).recover()
        # The replayed WAL is consumed into a snapshot, so a third
        # incarnation restores from the snapshot and replays nothing.
        c = _replica()
        recovered = _persister(tmp_path, c).recover()
        assert recovered.snapshot is not None
        assert recovered.snapshot_entries == 4
        assert recovered.replayed_entries == 0
        assert c.applied_upto == 4
        assert c.store.data == a.store.data

    def test_decided_slot_journals_decision_not_slot_state(self, tmp_path):
        a = _replica()
        persister = _persister(tmp_path, a)
        persister.recover()
        a.dirty_slots.add(0)
        _decide(a, [0])
        persister.after_activation()
        persister.close()
        segment = list_segments(NodeStorage(tmp_path, 0).dir)[0]
        records = [
            decode_record(CODEC, payload)
            for payload in scan_segment(segment).payloads
        ]
        assert [type(r) for r in records] == [WalDecision]
        assert records[0].slot == 0

    def test_undecided_slot_state_survives_restart(self, tmp_path):
        a = _replica()
        persister = _persister(tmp_path, a)
        persister.recover()
        vote = _command(7, prefix="vote")
        assert a.restore_slot_state(
            7, bal=3, vbal=2, value=vote, initial_value=vote, sent_twoa=(0, 3)
        )
        a.dirty_slots.add(7)
        persister.after_activation()
        persister.close()

        b = _replica()
        recovered = _persister(tmp_path, b).recover()
        assert recovered.replayed_entries == 1
        inner = b._slots[7]
        assert inner.bal == 3
        assert inner.vbal == 2
        assert inner.val == vote
        assert inner._sent_twoa == {0, 3}

    def test_unchanged_slot_not_rejournaled(self, tmp_path):
        a = _replica()
        persister = _persister(tmp_path, a)
        persister.recover()
        vote = _command(9, prefix="vote")
        a.restore_slot_state(9, bal=1, vbal=1, value=vote, initial_value=vote)
        a.dirty_slots.add(9)
        persister.after_activation()
        # Same state marked dirty again: fingerprint matches, no new record.
        a.dirty_slots.add(9)
        persister.after_activation()
        persister.close()
        segment = list_segments(NodeStorage(tmp_path, 0).dir)[0]
        assert len(scan_segment(segment).payloads) == 1

    def test_snapshot_threshold_truncates_and_rotates(self, tmp_path):
        a = _replica()
        obs = Observability(node=0)
        persister = _persister(tmp_path, a, snapshot_every=2, obs=obs)
        persister.recover()
        _decide(a, range(3))
        persister.after_activation()
        persister.close()
        node_dir = NodeStorage(tmp_path, 0).dir
        snapshots = list_snapshots(node_dir)
        assert [info.upto for info in snapshots] == [3]
        # Applied machinery below the frontier is gone; the in-memory
        # applied log (the convergence witness) is not.
        assert a.decided == {}
        assert len(a.store.log) == 3
        counters = obs.registry.snapshot()["counters"]
        assert counters["storage.snapshots_written"] == 1
        assert counters["storage.truncated_slots"] == 3

    def test_hard_close_models_sigkill(self, tmp_path):
        a = _replica()
        persister = _persister(tmp_path, a)
        persister.recover()
        _decide(a, range(2))
        persister.after_activation()
        persister.close(hard=True)
        b = _replica()
        assert _persister(tmp_path, b).recover().replayed_entries == 2


class TestRetention:
    def test_keeps_newest_snapshots_and_their_segments(self, tmp_path):
        for upto, seq in ((10, 2), (20, 3), (30, 5)):
            (tmp_path / snapshot_name(upto, seq)).write_text("{}")
        for seq in range(1, 6):
            (tmp_path / segment_name(seq)).write_bytes(b"")
        report = RetentionPolicy(keep_snapshots=2).apply(tmp_path)
        assert [p.name for p in report.deleted_snapshots] == [snapshot_name(10, 2)]
        assert [p.name for p in report.deleted_segments] == [
            segment_name(1),
            segment_name(2),
        ]
        # Kept: snapshots (20,3)/(30,5) and every segment they may need.
        assert [info.upto for info in list_snapshots(tmp_path)] == [20, 30]
        assert [p.name for p in list_segments(tmp_path)] == [
            segment_name(3),
            segment_name(4),
            segment_name(5),
        ]

    def test_without_snapshots_nothing_is_deleted(self, tmp_path):
        (tmp_path / segment_name(1)).write_bytes(b"")
        report = RetentionPolicy().apply(tmp_path)
        assert report.deleted == 0
        assert list_segments(tmp_path)


class TestStateTransfer:
    def test_install_state_grafts_a_leading_peer(self):
        ahead = _replica()
        _decide(ahead, range(6))
        behind = _replica(pid=1)
        _decide(behind, range(2))
        state = deserialize_replica_state(
            CODEC, serialize_replica_state(CODEC, ahead)
        )
        installed = install_state(behind, state)
        assert installed == 4
        assert behind.applied_upto == 6
        assert behind.store.data == ahead.store.data

    def test_install_state_from_stale_peer_is_a_noop(self):
        ahead = _replica()
        _decide(ahead, range(6))
        stale = deserialize_replica_state(
            CODEC, serialize_replica_state(CODEC, _replica(pid=1))
        )
        assert install_state(ahead, stale) == 0
        assert ahead.applied_upto == 6

    def test_install_remote_persists_the_transfer(self, tmp_path):
        behind = _replica()
        persister = _persister(tmp_path, behind)
        persister.recover()
        ahead = _replica(pid=1)
        _decide(ahead, range(5))
        state = deserialize_replica_state(
            CODEC, serialize_replica_state(CODEC, ahead)
        )
        assert persister.install_remote(state) == 5
        persister.close()
        # The transfer was rolled into a local snapshot immediately.
        fresh = _replica()
        recovered = _persister(tmp_path, fresh).recover()
        assert recovered.snapshot is not None
        assert fresh.applied_upto == 5


class TestInspect:
    def test_inspect_summarizes_node_directories(self, tmp_path):
        a = _replica()
        persister = _persister(tmp_path, a)
        persister.recover()
        _decide(a, range(3))
        persister.after_activation()
        persister.close()
        persister.storage.update_meta(host="127.0.0.1", port=4242)
        rows = inspect_data_dir(tmp_path, CODEC)
        assert len(rows) == 1
        row = rows[0]
        assert row["node"] == "node-0"
        assert row["wal_decisions"] == 3
        assert row["max_slot_seen"] == 2
        assert row["meta"]["port"] == 4242
        assert row["segments"][0]["records"] == 3
