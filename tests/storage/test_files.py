"""Atomic temp-then-rename writes."""

from repro.storage import atomic_write_bytes, atomic_write_text


class TestAtomicWrites:
    def test_creates_parents_and_writes(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "artifact.json"
        atomic_write_text(target, "{}\n")
        assert target.read_text() == "{}\n"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_litter_after_success(self, tmp_path):
        atomic_write_bytes(tmp_path / "blob.bin", b"\x00\x01", durable=True)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["blob.bin"]
        assert (tmp_path / "blob.bin").read_bytes() == b"\x00\x01"
