"""Batched live run ≡ batched simulated run, down to the decided slots.

The PR-2 equivalence test (``test_cluster.py``) pins the unbatched path;
this one turns the throughput knobs on (``batch_size > 1``, ``window > 1``)
and shows the live cluster and the simulator still decide *identical*
logs for the same seeded workload: same slot values (including the
deterministic ``__batch:{pid}:{seq}__`` identities), same applied command
sequence, same stores, same per-command results. That is the whole
claim of the throughput layer — it lives strictly above the unchanged
Figure 1 slot protocol, so it cannot change what gets decided.
"""

import asyncio

from repro.net.cluster import LocalCluster
from repro.net.loadgen import run_loadgen
from repro.omega import static_omega_factory
from repro.protocols.twostep import TwoStepConfig
from repro.smr import CommandBatch, check_logs_consistent, commands_in
from repro.smr.client import put_get_workload, run_kv_workload
from repro.smr.log import smr_factory

HARD_TIMEOUT = 60.0
BATCH, WINDOW = 4, 2


def _run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, HARD_TIMEOUT))


def _batched_factory(delta):
    return smr_factory(
        1,
        1,
        delta=delta,
        omega_factory=static_omega_factory(0),
        consensus_config=TwoStepConfig(f=1, e=1, delta=delta, is_object=True),
        batch_size=BATCH,
        window=WINDOW,
    )


def _slot_structure(replica):
    """(type, member ids) per decided slot — the comparable log shape."""
    return {
        slot: (type(value).__name__, tuple(c.command_id for c in commands_in(value)))
        for slot, value in replica.decided.items()
    }


class TestBatchedEquivalence:
    def test_batched_live_and_simulated_decide_identical_logs(self):
        ops = put_get_workload(
            count=15, keys=("alpha", "beta"), proxies=[0, 1, 2], seed=11
        )

        # Simulated: FixedLatency(1.0), batching on. The spaced schedule
        # means each command decides before the next arrives, so every
        # slot holds a deterministic singleton CommandBatch.
        outcome = run_kv_workload(
            _batched_factory(1.0), n=3, ops=ops, until=len(ops) * 3.0 + 60.0
        )
        assert not outcome.unfinished
        assert check_logs_consistent(outcome.replicas) == []
        sim_proxy = outcome.replicas[0]
        assert any(
            isinstance(value, CommandBatch) for value in sim_proxy.decided.values()
        )
        sim_structure = _slot_structure(sim_proxy)
        sim_decided = dict(sim_proxy.decided)
        sim_log = [entry.command_id for entry in sim_proxy.store.log]
        sim_store = dict(sim_proxy.store.data)

        # Live: the same factory with batching on, one closed-loop client
        # preserving the sequential submission order the spaced simulated
        # schedule implies.
        async def live():
            async with LocalCluster(
                3, _batched_factory(0.5), serve_clients=True
            ) as cluster:
                report = await run_loadgen(
                    cluster.addresses, clients=1, ops=ops, codec=cluster.codec
                )
                await cluster.wait_logs_converged(
                    timeout=20.0, expected_commands=len(ops)
                )
                replicas = cluster.survivor_replicas()
                assert check_logs_consistent(replicas) == []
                return (
                    report,
                    [_slot_structure(replica) for replica in replicas],
                    [dict(replica.decided) for replica in replicas],
                    [
                        [entry.command_id for entry in replica.store.log]
                        for replica in replicas
                    ],
                    [dict(replica.store.data) for replica in replicas],
                )

        report, structures, decideds, logs, stores = _run(live())

        assert report.failed == 0
        assert report.completed == len(ops)
        # Same per-command results, live and simulated.
        assert report.results == outcome.results
        # Same decided slots — value types, member order, and the
        # deterministic batch identities — on every live replica.
        assert all(structure == sim_structure for structure in structures)
        assert all(decided == sim_decided for decided in decideds)
        # Same applied sequence and same final store.
        assert all(log == sim_log for log in logs)
        assert all(store == sim_store for store in stores)
