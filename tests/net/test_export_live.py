"""Live export pipeline: HTTP /metrics, JSONL time series, `repro top`.

A NodeServer's client port speaks two protocols: length-prefixed frames
and plain HTTP (sniffed from the first four bytes — an ASCII method can
never be a legal frame length).  These tests drive the HTTP side with a
raw socket exactly like a Prometheus scraper would, validate the
exposition format, watch the per-node JSONL time series grow, and
render the `repro top` dashboard from a real scrape.
"""

import asyncio
import json
import pathlib

from repro.net.cluster import LocalCluster
from repro.net.loadgen import run_loadgen
from repro.net.stats import describe_cluster_stats, scrape_cluster
from repro.net.top import render_top, run_top
from repro.omega import static_omega_factory
from repro.protocols.twostep import TwoStepConfig
from repro.smr.log import smr_factory

HARD_TIMEOUT = 120.0


def _factory(delta: float = 0.05):
    return smr_factory(
        1,
        1,
        delta=delta,
        omega_factory=static_omega_factory(0),
        consensus_config=TwoStepConfig(f=1, e=1, delta=delta, is_object=True),
    )


def _run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, HARD_TIMEOUT))


async def _http_get(address, request: bytes) -> bytes:
    reader, writer = await asyncio.open_connection(*address)
    try:
        writer.write(request)
        await writer.drain()
        return await asyncio.wait_for(reader.read(), 10.0)
    finally:
        writer.close()


def _validate_exposition(body: str) -> None:
    """The same structural checks the CI smoke step applies."""
    assert body.strip(), "empty exposition"
    declared = set()
    for line in body.strip().splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split()
            assert kind in ("counter", "gauge", "histogram"), line
            declared.add(name)
            continue
        assert not line.startswith("#"), f"unexpected comment: {line}"
        name = line.split("{")[0].split(" ")[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        assert base in declared, f"sample before TYPE: {line}"
        value = line.rsplit(" ", 1)[1]
        assert value == "+Inf" or float(value) is not None, line
        assert name.startswith("repro_"), line


class TestMetricsEndpoint:
    def test_get_metrics_speaks_prometheus(self):
        async def scenario():
            async with LocalCluster(
                3, _factory(), serve_clients=True
            ) as cluster:
                report = await run_loadgen(
                    cluster.addresses,
                    clients=2,
                    count=30,
                    codec=cluster.codec,
                    client_id_prefix="prom",
                )
                assert report.failed == 0
                raw = await _http_get(
                    cluster.addresses[0],
                    b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
                )
                return raw.decode()

        response = _run(scenario())
        head, _, body = response.partition("\r\n\r\n")
        assert head.startswith("HTTP/1.0 200 OK")
        assert "text/plain; version=0.0.4" in head
        _validate_exposition(body)
        assert 'node="0"' in body
        assert "repro_consensus_decisions_fast" in body
        assert "repro_smr_commit_seconds_bucket" in body

    def test_head_and_unknown_path(self):
        async def scenario():
            async with LocalCluster(
                3, _factory(), serve_clients=True
            ) as cluster:
                head = await _http_get(
                    cluster.addresses[0], b"HEAD /metrics HTTP/1.0\r\n\r\n"
                )
                missing = await _http_get(
                    cluster.addresses[0], b"GET /nope HTTP/1.0\r\n\r\n"
                )
                snapshot = cluster.nodes[0].stats_snapshot()
                return head.decode(), missing.decode(), snapshot

        head, missing, snapshot = _run(scenario())
        assert head.startswith("HTTP/1.0 200 OK")
        assert head.partition("\r\n\r\n")[2] == ""  # HEAD: no body
        assert missing.startswith("HTTP/1.0 404")
        # Scrapes are themselves observable.
        assert snapshot["counters"].get("net.http_scrapes", 0) >= 2

    def test_frame_protocol_unaffected_by_http_support(self):
        async def scenario():
            async with LocalCluster(
                3, _factory(), serve_clients=True
            ) as cluster:
                report = await run_loadgen(
                    cluster.addresses,
                    clients=2,
                    count=20,
                    codec=cluster.codec,
                    client_id_prefix="coexist",
                )
                view = await scrape_cluster(
                    cluster.addresses, codec=cluster.codec
                )
                return report, view

        report, view = _run(scenario())
        assert report.failed == 0
        assert view["unreachable"] == []


class TestWireInfo:
    def test_snapshot_surfaces_negotiated_codec(self):
        async def scenario():
            async with LocalCluster(
                3, _factory(), serve_clients=True
            ) as cluster:
                await run_loadgen(
                    cluster.addresses,
                    clients=1,
                    count=10,
                    codec=cluster.codec,
                    client_id_prefix="wi",
                )
                view = await scrape_cluster(
                    cluster.addresses, codec=cluster.codec
                )
                return view

        view = _run(scenario())
        for pid, snapshot in view["nodes"].items():
            wire = snapshot["wire"]
            assert wire["codec"] in ("json", "binary")
            assert len(wire["registry_hash"]) == 16
            # All peer links resolved to a concrete version.
            assert set(wire["peer_links_out"]) == {
                str(p) for p in range(3) if p != pid
            }
        assert "wire:" in describe_cluster_stats(view)


class TestTimeseries:
    def test_nodes_append_jsonl_rows(self, tmp_path):
        async def scenario():
            async with LocalCluster(
                3,
                _factory(),
                serve_clients=True,
                timeseries_dir=str(tmp_path),
                timeseries_interval=0.1,
            ) as cluster:
                await run_loadgen(
                    cluster.addresses,
                    clients=1,
                    count=20,
                    codec=cluster.codec,
                    client_id_prefix="ts",
                )
                await asyncio.sleep(0.5)

        _run(scenario())
        for pid in range(3):
            path = pathlib.Path(tmp_path) / f"node-{pid}.jsonl"
            assert path.exists(), f"missing {path}"
            rows = [json.loads(line) for line in path.read_text().splitlines()]
            assert len(rows) >= 2
            assert all(row["node"] == pid for row in rows)
            times = [row["t"] for row in rows]
            assert times == sorted(times)
        # The workload spread across proxies: together their final rows
        # account for every committed command.
        committed = 0
        for pid in range(3):
            rows = [
                json.loads(line)
                for line in (pathlib.Path(tmp_path) / f"node-{pid}.jsonl")
                .read_text()
                .splitlines()
            ]
            committed += rows[-1]["commands_committed"]
        assert committed >= 20


class TestTopView:
    def test_run_top_renders_live_cluster(self):
        async def scenario():
            async with LocalCluster(
                3, _factory(), serve_clients=True
            ) as cluster:
                await run_loadgen(
                    cluster.addresses,
                    clients=2,
                    count=30,
                    codec=cluster.codec,
                    client_id_prefix="top",
                )
                frames = []
                await run_top(
                    cluster.addresses,
                    interval=0.1,
                    iterations=2,
                    codec=cluster.codec,
                    out=frames.append,
                    clear=False,
                )
                return frames

        frames = _run(scenario())
        assert len(frames) == 2
        for frame in frames:
            assert "node   cmds/s" in frame
            assert "n0" in frame and "n2" in frame
            assert "fast-path ratio" in frame
        # Second frame has a previous scrape: rate column is numeric.
        assert "cmds/s;" in frames[1] or "cmds/s" in frames[1].splitlines()[-1]

    def test_render_top_marks_unreachable_nodes(self):
        async def scenario():
            async with LocalCluster(
                3, _factory(), serve_clients=True
            ) as cluster:
                await cluster.crash(2)
                view = await scrape_cluster(
                    cluster.addresses, codec=cluster.codec
                )
                return view

        view = _run(scenario())
        frame = render_top(view)
        assert "[unreachable]" in frame
        assert "unreachable: [2]" in frame
