"""Round-trip identity for the wire codec, over every registered type.

The codec's contract is that anything a :class:`~repro.core.process.Process`
can ``ctx.send`` round-trips bit-exactly through the wire format. The
hypothesis test below derives a value strategy for *each* registered
dataclass from its field annotations, so adding a new message type to any
protocol automatically extends the property.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import Message
from repro.core.values import BOTTOM
from repro.net.codec import (
    CodecError,
    FrameDecoder,
    MessageCodec,
    WIRE_VERSION,
    default_registry,
)
from repro.net.wire import ClientReply, NodeHello
from repro.protocols.twostep import OneB, Propose, TwoB
from repro.smr.kvstore import CommandBatch, KVCommand
from repro.smr.log import Slotted, SubmitCommand

CODEC = MessageCodec()
REGISTRY = CODEC.registry


# ----------------------------------------------------------------------
# Strategies keyed off field annotation strings.
# ----------------------------------------------------------------------

_ids = st.integers(min_value=0, max_value=7)
_small_int = st.integers(min_value=-3, max_value=100)
_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
_text = st.text(max_size=12)

# Consensus values in this repo are hashable scalars; BOTTOM marks "no value".
_value = st.one_of(st.just(BOTTOM), _small_int, _text, st.booleans())

# ``Any``-annotated payload fields (KV results/values) may carry structured
# data; keep members hashable where the container demands it.
_any_scalar = st.one_of(st.none(), st.booleans(), _small_int, _floats, _text)
_any_value = st.recursive(
    _any_scalar,
    lambda inner: st.one_of(
        st.lists(inner, max_size=3),
        st.tuples(inner, inner),
        st.frozensets(st.one_of(_small_int, _text), max_size=3),
        st.dictionaries(_text, inner, max_size=3),
    ),
    max_leaves=6,
)

_instance_id = st.tuples(_ids, _small_int)
_kv_command = st.builds(
    KVCommand,
    op=st.sampled_from(["put", "get", "cas", "noop"]),
    key=_text,
    value=_any_value,
    expected=_any_value,
    command_id=_text,
)
_command_batch = st.builds(
    CommandBatch,
    commands=st.lists(_kv_command, min_size=1, max_size=3).map(tuple),
    batch_id=_text,
)


def _epaxos_command():
    from repro.protocols.epaxos.messages import Command

    return st.builds(
        Command,
        key=_text,
        op=st.sampled_from(["put", "get"]),
        value=_any_value,
        command_id=_text,
    )


# A Slotted frame wraps another message; a shallow inner pool is enough to
# exercise the nesting path without recursing the whole registry.
_inner_message = st.one_of(
    st.builds(Propose, value=_value),
    st.builds(TwoB, ballot=_small_int, value=_value),
    st.builds(SubmitCommand, command=_kv_command),
)


def _strategy_for_annotation(annotation: str) -> st.SearchStrategy:
    table = {
        "int": _small_int,
        "ProcessId": _ids,
        "float": _floats,
        "str": _text,
        "bool": st.booleans(),
        "MaybeValue": _value,
        "Any": _any_value,
        "Message": _inner_message,
        "KVCommand": _kv_command,
        "Command": _epaxos_command(),
        "Optional[Command]": st.one_of(st.none(), _epaxos_command()),
        "InstanceId": _instance_id,
        "FrozenSet[InstanceId]": st.frozensets(_instance_id, max_size=4),
        "Tuple[int, ...]": st.lists(_small_int, max_size=4).map(tuple),
        "Tuple[Tuple[int, KVCommand], ...]": st.lists(
            st.tuples(_small_int, _kv_command), max_size=3
        ).map(tuple),
        "Tuple[Tuple[int, int, KVCommand], ...]": st.lists(
            st.tuples(_small_int, _small_int, _kv_command), max_size=3
        ).map(tuple),
    }
    if annotation not in table:
        raise AssertionError(
            f"no strategy for field annotation {annotation!r}; "
            "extend the table when adding new message field types"
        )
    return table[annotation]


def _strategy_for_type(cls) -> st.SearchStrategy:
    # Classes with validated fields get purpose-built strategies.
    from repro.protocols.epaxos.messages import Command as EPaxosCommand

    if cls is EPaxosCommand:
        return _epaxos_command()
    if cls is KVCommand:
        return _kv_command
    if cls is CommandBatch:
        return _command_batch
    fields = dataclasses.fields(cls)
    if not fields:
        return st.just(cls())
    return st.builds(
        cls,
        **{
            field.name: _strategy_for_annotation(str(field.type))
            for field in fields
        },
    )


_any_registered = st.sampled_from(REGISTRY.types()).flatmap(_strategy_for_type)


# ----------------------------------------------------------------------
# The property: encode/decode is the identity on every registered type.
# ----------------------------------------------------------------------


class TestRoundTripProperty:
    @settings(max_examples=300, deadline=None)
    @given(_any_registered)
    def test_encode_decode_identity(self, message):
        assert CODEC.decode(CODEC.encode(message)) == message

    @settings(max_examples=100, deadline=None)
    @given(_any_registered)
    def test_encoding_is_canonical(self, message):
        # Same value => same bytes (sets are serialized in sorted order).
        assert CODEC.encode(message) == CODEC.encode(
            CODEC.decode(CODEC.encode(message))
        )

    def test_every_registered_type_has_a_strategy(self):
        # _strategy_for_type raises for unknown annotations, so building a
        # strategy for each class proves full registry coverage.
        for cls in REGISTRY.types():
            _strategy_for_type(cls)
        assert len(REGISTRY.types()) >= 40

    def test_registry_covers_all_concrete_message_subclasses(self):
        def walk(cls):
            for sub in cls.__subclasses__():
                yield sub
                yield from walk(sub)

        registered = set(REGISTRY.types())
        from repro.core.process import ClientRequest

        for cls in walk(Message):
            if cls in (Message, ClientRequest):
                continue
            if not cls.__module__.startswith("repro."):
                continue  # test-local probe messages never travel the wire
            assert cls in registered, f"{cls.__name__} missing from wire registry"


class TestDeterministicSamples:
    def test_nested_slotted_oneb(self):
        message = Slotted(
            slot=3,
            inner=OneB(
                ballot=2,
                vbal=1,
                value="x",
                proposer=BOTTOM,
                decided=BOTTOM,
                initial_value="y",
            ),
        )
        decoded = CODEC.decode(CODEC.encode(message))
        assert decoded == message
        assert decoded.inner.decided is BOTTOM

    def test_bottom_round_trips_as_the_singleton(self):
        decoded = CODEC.decode(CODEC.encode(Propose(value=BOTTOM)))
        assert decoded.value is BOTTOM

    def test_client_reply_with_structured_result(self):
        message = ClientReply(
            request_id="c1:0",
            command_id="cmd-0",
            result={"k": [1, 2.5, None], "t": (1, "a")},
            commit_seconds=0.003,
            duplicate=True,
        )
        decoded = CODEC.decode(CODEC.encode(message))
        assert decoded == message
        assert isinstance(decoded.result["t"], tuple)


class TestFrameDecoder:
    def test_chunked_feed_reassembles_frames(self):
        frames = [
            CODEC.encode(NodeHello(pid=i)) for i in range(5)
        ] + [CODEC.encode(Propose(value="v"))]
        stream = b"".join(frames)
        decoder = FrameDecoder(CODEC)
        out = []
        for i in range(0, len(stream), 3):  # worst-case tiny chunks
            out.extend(decoder.feed(stream[i : i + 3]))
        assert out == [NodeHello(pid=i) for i in range(5)] + [Propose(value="v")]
        assert decoder.pending_bytes == 0

    def test_partial_frame_stays_buffered(self):
        frame = CODEC.encode(NodeHello(pid=1))
        decoder = FrameDecoder(CODEC)
        assert decoder.feed(frame[:-1]) == []
        assert decoder.pending_bytes == len(frame) - 1
        assert decoder.feed(frame[-1:]) == [NodeHello(pid=1)]

    def test_oversized_length_prefix_rejected(self):
        decoder = FrameDecoder(CODEC)
        with pytest.raises(CodecError, match="corrupt"):
            decoder.feed(b"\xff\xff\xff\xff")


class TestErrors:
    def test_version_mismatch(self):
        frame = bytearray(CODEC.encode(NodeHello(pid=0)))
        frame[4] = WIRE_VERSION + 1  # flip the version byte
        with pytest.raises(CodecError, match="version"):
            CODEC.decode(bytes(frame))

    def test_unknown_wire_type(self):
        with pytest.raises(CodecError, match="unknown wire type"):
            CODEC.from_jsonable({"__t": "rec", "k": "NoSuchMessage", "v": {}})

    def test_unregistered_python_type_rejected(self):
        class NotOnTheWire:
            pass

        with pytest.raises(CodecError, match="not registered"):
            CODEC.to_jsonable(NotOnTheWire())

    def test_registry_collision_rejected(self):
        registry = default_registry()
        with pytest.raises(CodecError, match="already registered"):
            registry.register(KVCommand, name="NodeHello")

    def test_garbage_body_rejected(self):
        frame = CODEC.encode(NodeHello(pid=0))
        payload = bytes([WIRE_VERSION]) + b"{not json"
        with pytest.raises(CodecError, match="undecodable"):
            CODEC.decode_payload(payload)
        del frame
