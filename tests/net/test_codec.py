"""Round-trip identity for the wire codec, over every registered type.

The codec's contract is that anything a :class:`~repro.core.process.Process`
can ``ctx.send`` round-trips bit-exactly through the wire format — under
*both* formats: the hypothesis tests below run each derived strategy
through the JSON (v1) and binary (v2) encoders, plus a cross-codec oracle
(the two decoders must agree on every value). The strategy for each
registered dataclass is derived from its field annotations, so adding a
new message type to any protocol automatically extends the property.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import Message
from repro.core.values import BOTTOM
from repro.net.codec import (
    CodecError,
    FrameDecoder,
    MAX_FRAME_BYTES,
    MAX_PENDING_BYTES,
    MessageCodec,
    WIRE_VERSION,
    WIRE_VERSION_BINARY,
    WIRE_VERSION_JSON,
    default_registry,
    make_codec,
)
from repro.net.wire import ClientReply, NodeHello
from repro.protocols.twostep import OneB, Propose, TwoB
from repro.smr.kvstore import CommandBatch, KVCommand
from repro.smr.log import Slotted, SubmitCommand

CODEC = MessageCodec()
CODEC_BINARY = MessageCodec(wire_version=WIRE_VERSION_BINARY)
CODECS = {"json": CODEC, "binary": CODEC_BINARY}
REGISTRY = CODEC.registry


# ----------------------------------------------------------------------
# Strategies keyed off field annotation strings.
# ----------------------------------------------------------------------

_ids = st.integers(min_value=0, max_value=7)
_small_int = st.integers(min_value=-3, max_value=100)
_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
_text = st.text(max_size=12)

# Consensus values in this repo are hashable scalars; BOTTOM marks "no value".
_value = st.one_of(st.just(BOTTOM), _small_int, _text, st.booleans())

# ``Any``-annotated payload fields (KV results/values) may carry structured
# data; keep members hashable where the container demands it.
_any_scalar = st.one_of(st.none(), st.booleans(), _small_int, _floats, _text)
_any_value = st.recursive(
    _any_scalar,
    lambda inner: st.one_of(
        st.lists(inner, max_size=3),
        st.tuples(inner, inner),
        st.frozensets(st.one_of(_small_int, _text), max_size=3),
        st.dictionaries(_text, inner, max_size=3),
    ),
    max_leaves=6,
)

_instance_id = st.tuples(_ids, _small_int)
_kv_command = st.builds(
    KVCommand,
    op=st.sampled_from(["put", "get", "cas", "noop"]),
    key=_text,
    value=_any_value,
    expected=_any_value,
    command_id=_text,
)
_command_batch = st.builds(
    CommandBatch,
    commands=st.lists(_kv_command, min_size=1, max_size=3).map(tuple),
    batch_id=_text,
)


def _epaxos_command():
    from repro.protocols.epaxos.messages import Command

    return st.builds(
        Command,
        key=_text,
        op=st.sampled_from(["put", "get"]),
        value=_any_value,
        command_id=_text,
    )


# A Slotted frame wraps another message; a shallow inner pool is enough to
# exercise the nesting path without recursing the whole registry.
_inner_message = st.one_of(
    st.builds(Propose, value=_value),
    st.builds(TwoB, ballot=_small_int, value=_value),
    st.builds(SubmitCommand, command=_kv_command),
)


def _strategy_for_annotation(annotation: str) -> st.SearchStrategy:
    table = {
        "int": _small_int,
        "ProcessId": _ids,
        "float": _floats,
        "str": _text,
        "bool": st.booleans(),
        "MaybeValue": _value,
        "Any": _any_value,
        "Message": _inner_message,
        "KVCommand": _kv_command,
        "Command": _epaxos_command(),
        "Optional[Command]": st.one_of(st.none(), _epaxos_command()),
        "InstanceId": _instance_id,
        "FrozenSet[InstanceId]": st.frozensets(_instance_id, max_size=4),
        "Tuple[int, ...]": st.lists(_small_int, max_size=4).map(tuple),
        "Tuple[Tuple[int, KVCommand], ...]": st.lists(
            st.tuples(_small_int, _kv_command), max_size=3
        ).map(tuple),
        "Tuple[Tuple[int, int, KVCommand], ...]": st.lists(
            st.tuples(_small_int, _small_int, _kv_command), max_size=3
        ).map(tuple),
    }
    if annotation not in table:
        raise AssertionError(
            f"no strategy for field annotation {annotation!r}; "
            "extend the table when adding new message field types"
        )
    return table[annotation]


def _strategy_for_type(cls) -> st.SearchStrategy:
    # Classes with validated fields get purpose-built strategies.
    from repro.protocols.epaxos.messages import Command as EPaxosCommand

    if cls is EPaxosCommand:
        return _epaxos_command()
    if cls is KVCommand:
        return _kv_command
    if cls is CommandBatch:
        return _command_batch
    fields = dataclasses.fields(cls)
    if not fields:
        return st.just(cls())
    return st.builds(
        cls,
        **{
            field.name: _strategy_for_annotation(str(field.type))
            for field in fields
        },
    )


_any_registered = st.sampled_from(REGISTRY.types()).flatmap(_strategy_for_type)


# ----------------------------------------------------------------------
# The property: encode/decode is the identity on every registered type.
# ----------------------------------------------------------------------


class TestRoundTripProperty:
    @pytest.mark.parametrize("name", sorted(CODECS))
    @settings(max_examples=300, deadline=None)
    @given(message=_any_registered)
    def test_encode_decode_identity(self, name, message):
        codec = CODECS[name]
        assert codec.decode(codec.encode(message)) == message

    @pytest.mark.parametrize("name", sorted(CODECS))
    @settings(max_examples=100, deadline=None)
    @given(message=_any_registered)
    def test_encoding_is_canonical(self, name, message):
        # Same value => same bytes (sets are serialized in sorted order).
        codec = CODECS[name]
        assert codec.encode(message) == codec.encode(
            codec.decode(codec.encode(message))
        )

    @settings(max_examples=200, deadline=None)
    @given(message=_any_registered)
    def test_cross_codec_oracle(self, message):
        # The two formats are views of the same value: decoding the binary
        # encoding must equal decoding the JSON encoding, and either codec
        # (both decode-capable up to v2) must read the other's frames.
        from_json = CODEC.decode(CODEC.encode(message))
        from_binary = CODEC_BINARY.decode(CODEC_BINARY.encode(message))
        assert from_json == from_binary == message
        assert CODEC.decode(CODEC_BINARY.encode(message)) == message
        assert CODEC_BINARY.decode(CODEC.encode(message)) == message

    @settings(max_examples=150, deadline=None)
    @given(body=st.binary(max_size=64))
    def test_malformed_binary_bytes_never_decode_garbage(self, body):
        # Arbitrary bytes under the binary version byte either happen to
        # decode (trivially possible: b"\x00" is None) or raise CodecError
        # — never any other exception, never a partial/trailing parse.
        payload = bytes((WIRE_VERSION_BINARY,)) + body
        try:
            value = CODEC_BINARY.decode_payload(payload)
        except CodecError:
            return
        # Anything accepted must re-encode canonically (full consumption
        # means it was a complete, self-consistent body).
        assert CODEC_BINARY.encode_payload(value) is not None

    @settings(max_examples=150, deadline=None)
    @given(body=st.binary(max_size=64))
    def test_malformed_json_bytes_never_decode_garbage(self, body):
        payload = bytes((WIRE_VERSION_JSON,)) + body
        try:
            CODEC.decode_payload(payload)
        except CodecError:
            return

    def test_every_registered_type_has_a_strategy(self):
        # _strategy_for_type raises for unknown annotations, so building a
        # strategy for each class proves full registry coverage.
        for cls in REGISTRY.types():
            _strategy_for_type(cls)
        assert len(REGISTRY.types()) >= 40

    def test_registry_covers_all_concrete_message_subclasses(self):
        def walk(cls):
            for sub in cls.__subclasses__():
                yield sub
                yield from walk(sub)

        registered = set(REGISTRY.types())
        from repro.core.process import ClientRequest

        for cls in walk(Message):
            if cls in (Message, ClientRequest):
                continue
            if not cls.__module__.startswith("repro."):
                continue  # test-local probe messages never travel the wire
            assert cls in registered, f"{cls.__name__} missing from wire registry"


class TestDeterministicSamples:
    def test_nested_slotted_oneb(self):
        message = Slotted(
            slot=3,
            inner=OneB(
                ballot=2,
                vbal=1,
                value="x",
                proposer=BOTTOM,
                decided=BOTTOM,
                initial_value="y",
            ),
        )
        decoded = CODEC.decode(CODEC.encode(message))
        assert decoded == message
        assert decoded.inner.decided is BOTTOM

    def test_bottom_round_trips_as_the_singleton(self):
        decoded = CODEC.decode(CODEC.encode(Propose(value=BOTTOM)))
        assert decoded.value is BOTTOM

    def test_client_reply_with_structured_result(self):
        message = ClientReply(
            request_id="c1:0",
            command_id="cmd-0",
            result={"k": [1, 2.5, None], "t": (1, "a")},
            commit_seconds=0.003,
            duplicate=True,
        )
        decoded = CODEC.decode(CODEC.encode(message))
        assert decoded == message
        assert isinstance(decoded.result["t"], tuple)


class TestFrameDecoder:
    def test_chunked_feed_reassembles_frames(self):
        frames = [
            CODEC.encode(NodeHello(pid=i)) for i in range(5)
        ] + [CODEC.encode(Propose(value="v"))]
        stream = b"".join(frames)
        decoder = FrameDecoder(CODEC)
        out = []
        for i in range(0, len(stream), 3):  # worst-case tiny chunks
            out.extend(decoder.feed(stream[i : i + 3]))
        assert out == [NodeHello(pid=i) for i in range(5)] + [Propose(value="v")]
        assert decoder.pending_bytes == 0

    def test_partial_frame_stays_buffered(self):
        frame = CODEC.encode(NodeHello(pid=1))
        decoder = FrameDecoder(CODEC)
        assert decoder.feed(frame[:-1]) == []
        assert decoder.pending_bytes == len(frame) - 1
        assert decoder.feed(frame[-1:]) == [NodeHello(pid=1)]

    def test_oversized_length_prefix_rejected(self):
        decoder = FrameDecoder(CODEC)
        with pytest.raises(CodecError, match="corrupt"):
            decoder.feed(b"\xff\xff\xff\xff")

    def test_binary_frames_interleave_with_json_frames(self):
        # Per-frame version dispatch: one stream may carry both formats
        # (a link that renegotiated, or a WAL written under two flags).
        frames = [
            CODEC.encode(NodeHello(pid=1)),
            CODEC_BINARY.encode(Propose(value="v")),
            CODEC.encode(TwoB(ballot=3, value=BOTTOM)),
        ]
        decoder = FrameDecoder(CODEC)
        out = decoder.feed(b"".join(frames))
        assert out == [NodeHello(pid=1), Propose(value="v"), TwoB(ballot=3, value=BOTTOM)]

    def test_pending_bytes_stay_bounded_for_partial_maximal_frame(self):
        # An honest-but-slow peer can buffer at most one maximal frame.
        decoder = FrameDecoder(CODEC)
        import struct

        header = struct.pack(">I", MAX_FRAME_BYTES)
        decoder.feed(header + bytes(1024))
        assert decoder.pending_bytes <= MAX_PENDING_BYTES

    def test_pending_cap_rejects_feeding_past_a_parse_error(self):
        # A caller that swallows the oversized-claim error and keeps
        # feeding must hit the pending cap, not grow the buffer forever.
        decoder = FrameDecoder(CODEC)
        with pytest.raises(CodecError, match="corrupt"):
            decoder.feed(b"\xff\xff\xff\xff" + bytes(MAX_FRAME_BYTES + 1))
        assert decoder.pending_bytes > MAX_PENDING_BYTES
        with pytest.raises(CodecError, match="buffered bytes"):
            decoder.feed(b"more")


class TestErrors:
    def test_version_mismatch(self):
        frame = bytearray(CODEC.encode(NodeHello(pid=0)))
        frame[4] = 9  # far beyond any version either format knows
        with pytest.raises(CodecError, match="version"):
            CODEC.decode(bytes(frame))

    def test_v1_only_codec_rejects_binary_frames(self):
        v1_only = MessageCodec(max_wire_version=WIRE_VERSION_JSON)
        frame = CODEC_BINARY.encode(NodeHello(pid=0))
        with pytest.raises(CodecError, match="version"):
            v1_only.decode(frame)

    def test_unknown_wire_type(self):
        with pytest.raises(CodecError, match="unknown wire type"):
            CODEC.from_jsonable({"__t": "rec", "k": "NoSuchMessage", "v": {}})

    def test_rec_field_mismatch_names_the_wire_type(self):
        # Version-skew diagnosis: the error must say *which* wire type's
        # fields failed to bind, not just dump the field list.
        with pytest.raises(CodecError, match="'NodeHello'"):
            CODEC.from_jsonable(
                {"__t": "rec", "k": "NodeHello", "v": {"pid": 0, "extra": 1}}
            )

    def test_binary_unknown_type_id_names_the_id(self):
        payload = bytes((WIRE_VERSION_BINARY, 0x0B, 0xFF, 0xFF))
        with pytest.raises(CodecError, match="type id 65535"):
            CODEC.decode_payload(payload)

    def test_binary_trailing_bytes_rejected(self):
        payload = CODEC_BINARY.encode_payload(NodeHello(pid=0)) + b"\x00"
        with pytest.raises(CodecError, match="trailing"):
            CODEC.decode_payload(payload)

    def test_unregistered_python_type_rejected(self):
        class NotOnTheWire:
            pass

        with pytest.raises(CodecError, match="not registered"):
            CODEC.to_jsonable(NotOnTheWire())
        with pytest.raises(CodecError, match="not registered"):
            CODEC_BINARY.encode_payload(NotOnTheWire())

    def test_registry_collision_rejected(self):
        registry = default_registry()
        with pytest.raises(CodecError, match="already registered"):
            registry.register(KVCommand, name="NodeHello")

    def test_garbage_body_rejected(self):
        frame = CODEC.encode(NodeHello(pid=0))
        payload = bytes([WIRE_VERSION]) + b"{not json"
        with pytest.raises(CodecError, match="undecodable"):
            CODEC.decode_payload(payload)
        del frame

    def test_make_codec_names(self):
        assert make_codec("json").wire_version == WIRE_VERSION_JSON
        assert make_codec("binary").wire_version == WIRE_VERSION_BINARY
        with pytest.raises(CodecError, match="unknown codec"):
            make_codec("msgpack")


class TestBinaryFormat:
    def test_hot_messages_are_much_smaller_than_json(self):
        # The headline property the microbenchmark pins precisely: the
        # acceptance bar is >= 40% smaller on the hot SMR shapes.
        commands = tuple(
            KVCommand(op="put", key=f"key-{i}", value=f"value-{i}", command_id=f"c-{i}")
            for i in range(8)
        )
        batch = CommandBatch(commands=commands, batch_id="b-1")
        for message in (
            Slotted(slot=512, inner=Propose(value=batch)),
            Slotted(slot=512, inner=TwoB(ballot=0, value=batch)),
            ClientReply(
                request_id="r", command_id="c", result=None, commit_seconds=0.01
            ),
        ):
            json_frame = CODEC.encode(message)
            binary_frame = CODEC_BINARY.encode(message)
            assert len(binary_frame) <= 0.6 * len(json_frame), message

    def test_registry_hash_is_deterministic_and_skew_sensitive(self):
        # Codecs over equal registries agree (these two were built from
        # default_registry() at the same import); adding a type skews the
        # name table and must change the fingerprint. Registries are
        # compared same-time: other test modules define local probe
        # Message subclasses, so default_registry() drifts across a session.
        assert CODEC.registry_hash == CODEC_BINARY.registry_hash
        base = default_registry()
        skewed = default_registry()
        assert MessageCodec(base).registry_hash == MessageCodec(skewed).registry_hash
        skewed.register(KVCommand, name="ZZCodecSkewProbe")
        assert (
            MessageCodec(base).registry_hash != MessageCodec(skewed).registry_hash
        )

    def test_negotiate(self):
        binary = CODEC_BINARY
        assert binary.negotiate(2, binary.registry_hash) == WIRE_VERSION_BINARY
        assert binary.negotiate(2, "") == WIRE_VERSION_BINARY
        assert binary.negotiate(1, binary.registry_hash) == WIRE_VERSION_JSON
        assert binary.negotiate(2, "deadbeef") == WIRE_VERSION_JSON
        v1_only = MessageCodec(max_wire_version=WIRE_VERSION_JSON)
        assert v1_only.negotiate(2, v1_only.registry_hash) == WIRE_VERSION_JSON

    def test_encode_cache_returns_identical_frames(self):
        codec = MessageCodec(wire_version=WIRE_VERSION_BINARY)
        message = TwoB(ballot=4, value="hot")
        first = codec.encode(message)
        assert codec.encode(message) is first  # served from the LRU
        assert codec.decode(first) == message
        # Unhashable payloads bypass the cache but still encode.
        unhashable = ClientReply(
            request_id="r", command_id="c", result=[1, 2], commit_seconds=0.0
        )
        assert codec.decode(codec.encode(unhashable)) == unhashable
