"""Live cluster ≡ simulator: same machines, same decisions, same KV state.

The acceptance test of the runtime: an unchanged Figure 1 process factory
run under :class:`~repro.sim.simulation.Simulation` and under
:class:`~repro.net.cluster.LocalCluster` (real asyncio TCP) produces the
same consensus decisions, and a seeded
:func:`~repro.smr.client.put_get_workload` replayed live through
:func:`~repro.net.loadgen.run_loadgen` yields the same KV results and the
same replicated logs as :func:`~repro.smr.client.run_kv_workload`.
"""

import asyncio

from repro.core.values import BOTTOM
from repro.net.client import KVClient
from repro.net.cluster import LocalCluster
from repro.net.loadgen import run_loadgen
from repro.omega import static_omega_factory
from repro.protocols.twostep import TwoStepConfig, twostep_task_factory
from repro.sim.simulation import Simulation
from repro.smr.client import (
    check_logs_consistent,
    put_get_workload,
    run_kv_workload,
)
from repro.smr.log import smr_factory

#: Hard wall for any one live scenario; generous, never normally reached.
HARD_TIMEOUT = 60.0


def _run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, HARD_TIMEOUT))


def _task_factory(delta: float):
    # n = max(2e+f, 2f+1) = 3 for f=e=1; all-distinct proposals make the
    # value-ordered fast path pick the maximum, 'c'.
    return twostep_task_factory(
        proposals={0: "a", 1: "b", 2: "c"},
        f=1,
        e=1,
        delta=delta,
        omega_factory=static_omega_factory(0),
    )


def _smr_live_factory(delta: float = 0.5):
    return smr_factory(
        1,
        1,
        delta=delta,
        omega_factory=static_omega_factory(0),
        consensus_config=TwoStepConfig(f=1, e=1, delta=delta, is_object=True),
    )


class TestConsensusEquivalence:
    def test_live_fast_path_decides_the_simulators_value(self):
        # Simulated run: delta=1.0 simulated time units.
        simulation = Simulation(_task_factory(1.0), n=3)
        run = simulation.run_until_all_decide(until=100.0)
        sim_decisions = {pid: run.decisions[pid].value for pid in range(3)}
        assert set(sim_decisions.values()) == {"c"}

        # The same factory over real sockets (delta=0.5 real seconds keeps
        # the ballot timer clear of the fast path's few-ms commit).
        async def live():
            async with LocalCluster(3, _task_factory(0.5)) as cluster:
                return await cluster.wait_all_decided(timeout=20.0)

        live_decisions = _run(live())
        assert live_decisions == sim_decisions

    def test_live_decisions_are_recorded_once_per_node(self):
        async def live():
            async with LocalCluster(3, _task_factory(0.5)) as cluster:
                await cluster.wait_all_decided(timeout=20.0)
                return [node.decisions for node in cluster.nodes]

        for decisions in _run(live()):
            values = {value for _, value in decisions}
            assert values == {"c"}


class TestKVEquivalence:
    def test_loadgen_replays_the_simulated_workload_identically(self):
        ops = put_get_workload(
            count=15, keys=("alpha", "beta"), proxies=[0, 1, 2], seed=7
        )

        # Simulated: FixedLatency(1.0), the E10 harness.
        outcome = run_kv_workload(
            smr_factory(1, 1, omega_factory=static_omega_factory(0)),
            n=3,
            ops=ops,
            until=len(ops) * 3.0 + 60.0,
        )
        assert not outcome.unfinished
        assert not check_logs_consistent(outcome.replicas)

        # Live: one closed-loop client preserves the sequential order the
        # spaced simulated schedule implies, so per-command results match.
        async def live():
            async with LocalCluster(
                3, _smr_live_factory(), serve_clients=True
            ) as cluster:
                report = await run_loadgen(
                    cluster.addresses, clients=1, ops=ops, codec=cluster.codec
                )
                await cluster.wait_logs_converged(
                    timeout=20.0, expected_commands=len(ops)
                )
                replicas = cluster.survivor_replicas()
                logs = [
                    [entry.command_id for entry in replica.store.log]
                    for replica in replicas
                ]
                stores = [dict(replica.store.data) for replica in replicas]
                assert not check_logs_consistent(replicas)
                return report, logs, stores

        report, live_logs, live_stores = _run(live())

        assert report.failed == 0
        assert report.completed == len(ops)
        # Same results for every command, live and simulated.
        assert report.results == outcome.results

        sim_log = [
            entry.command_id for entry in outcome.replicas[0].store.log
        ]
        assert all(log == sim_log for log in live_logs)
        sim_store = dict(outcome.replicas[0].store.data)
        assert all(store == sim_store for store in live_stores)


class TestClientFailover:
    def test_client_completes_after_its_proxy_crashes(self):
        async def live():
            async with LocalCluster(
                3, _smr_live_factory(delta=1.0), serve_clients=True
            ) as cluster:
                client = KVClient(
                    cluster.addresses,
                    client_id="failover-test",
                    codec=cluster.codec,
                    timeout=2.0,
                    proxy=2,
                )
                try:
                    first = await client.put("k", "v1")
                    assert first.result == "v1"
                    assert client.proxy == 2

                    # Crash the client's proxy (not the Ω leader, node 0).
                    await cluster.crash(2)
                    second = await client.put("k", "v2")
                    assert client.proxy != 2  # failed over
                    assert not second.duplicate

                    # The dead proxy is blacklisted: preferring it again
                    # does not move the client back during the cooldown.
                    from repro.smr.kvstore import KVCommand

                    third = await client.submit(
                        KVCommand(
                            op="get", key="k", command_id="failover-get-1"
                        ),
                        proxy=2,
                    )
                    assert client.proxy != 2
                    assert third.result == "v2"
                finally:
                    await client.close()

        _run(live())


def test_survivors_satisfy_consensus_safety_after_crash():
    """A non-proxy crash is invisible to safety: logs still agree."""
    ops = put_get_workload(count=9, keys=("k",), proxies=[0, 1], seed=3)

    async def live():
        async with LocalCluster(
            3, _smr_live_factory(), serve_clients=True
        ) as cluster:
            first, rest = ops[:3], ops[3:]
            await run_loadgen(
                cluster.addresses, clients=1, ops=first, codec=cluster.codec
            )
            await cluster.crash(2)  # f=1 tolerated
            report = await run_loadgen(
                cluster.addresses, clients=1, ops=rest, codec=cluster.codec
            )
            assert report.failed == 0
            await cluster.wait_logs_converged(
                timeout=20.0, expected_commands=len(ops)
            )
            assert not check_logs_consistent(cluster.survivor_replicas())
            assert [node.pid for node in cluster.survivors] == [0, 1]

    _run(live())
