"""Live stats endpoint: scrape, merge, and the sim/live decision match.

The acceptance check for the observability layer is at the bottom: the
same seeded workload, run once through the simulator and once through a
live :class:`LocalCluster`, must report the *same* per-slot decision
paths and the same fast-path ratio — both runtimes count decisions
through the one ``ctx.obs`` seam, so a divergence means one of them is
lying about which commits took the 2Δ path.
"""

import asyncio

from repro.net.cluster import LocalCluster
from repro.net.loadgen import run_loadgen
from repro.net.stats import describe_cluster_stats, fetch_node_stats, scrape_cluster
from repro.obs import merge_decision_records, slot_paths
from repro.omega import static_omega_factory
from repro.protocols.twostep import TwoStepConfig
from repro.smr.client import put_get_workload, run_kv_workload
from repro.smr.log import smr_factory

HARD_TIMEOUT = 60.0


def _run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, HARD_TIMEOUT))


def _factory(delta: float = 0.05, batch_size: int = 1, window: int = 1):
    return smr_factory(
        1,
        1,
        delta=delta,
        omega_factory=static_omega_factory(0),
        consensus_config=TwoStepConfig(f=1, e=1, delta=delta, is_object=True),
        batch_size=batch_size,
        window=window,
    )


class TestScrapeCluster:
    def test_scrape_reports_fast_path_and_wire_counters(self):
        ops = put_get_workload(12, keys=("k",), proxies=[0, 1, 2], seed=3)

        async def live():
            async with LocalCluster(3, _factory(), serve_clients=True) as cluster:
                report = await run_loadgen(
                    cluster.addresses, clients=2, ops=ops, codec=cluster.codec
                )
                assert report.failed == 0, report.errors
                await cluster.wait_logs_converged(
                    timeout=20.0, expected_commands=len(ops)
                )
                view = await scrape_cluster(cluster.addresses, codec=cluster.codec)
                single = await fetch_node_stats(
                    cluster.addresses[0], codec=cluster.codec
                )
                return view, single

        view, single = _run(live())

        assert view["unreachable"] == []
        counters = view["merged"]["counters"]
        assert counters["consensus.decisions_fast"] > 0
        assert any(name.startswith("sent.") for name in counters)
        assert any(name.startswith("sent_bytes.") for name in counters)
        assert any(name.startswith("recv.") for name in counters)
        assert counters.get("timer.set", 0) > 0
        assert view["fast_path_ratio"] is not None
        assert view["decisions"]["conflicts"] == []
        assert view["decisions"]["slots"]
        assert view["merged"]["histograms"]["smr.commit_seconds"]["count"] > 0
        for snapshot in view["nodes"].values():
            assert snapshot is not None
            assert "decisions" in snapshot
        text = describe_cluster_stats(view)
        assert "fast-path ratio" in text

        # Single-node fetch: the reply identifies itself and carries the
        # same snapshot shape; no trace was requested, none rides along.
        assert single.pid == 0
        assert "counters" in single.snapshot
        assert single.trace == ()

    def test_trace_is_opt_in_and_carries_decide_events(self):
        ops = put_get_workload(6, keys=("k",), proxies=[0, 1, 2], seed=4)

        async def live():
            async with LocalCluster(
                3, _factory(), serve_clients=True, trace=True
            ) as cluster:
                report = await run_loadgen(
                    cluster.addresses, clients=1, ops=ops, codec=cluster.codec
                )
                assert report.failed == 0, report.errors
                await cluster.wait_logs_converged(
                    timeout=20.0, expected_commands=len(ops)
                )
                plain = await scrape_cluster(cluster.addresses, codec=cluster.codec)
                traced = await scrape_cluster(
                    cluster.addresses, codec=cluster.codec, include_trace=True
                )
                return plain, traced

        plain, traced = _run(live())

        # Without include_trace the events stay on the node.
        assert "traces" not in plain
        # Trace-enabled nodes report their retained window in snapshots.
        assert plain["nodes"][0]["trace_events"] > 0
        assert "traces" in traced
        events = [event for trace in traced["traces"].values() for event in trace]
        assert any(event["kind"] == "decide" for event in events)
        for trace in traced["traces"].values():
            sequences = [event["seq"] for event in trace]
            assert sequences == sorted(sequences)

    def test_loadgen_collects_stats_into_the_record(self):
        ops = put_get_workload(8, keys=("k",), proxies=[0, 1, 2], seed=5)

        async def live():
            async with LocalCluster(3, _factory(), serve_clients=True) as cluster:
                return await run_loadgen(
                    cluster.addresses,
                    clients=2,
                    ops=ops,
                    codec=cluster.codec,
                    collect_stats=True,
                )

        report = _run(live())
        assert report.failed == 0, report.errors
        assert report.cluster_stats is not None
        record = report.to_record()
        assert record["errors_sample"] == []
        assert record["fast_path_ratio"] is not None
        assert record["decisions_fast"] > 0
        merged = record["cluster_stats"]["merged"]["counters"]
        assert merged["consensus.decisions_fast"] == record["decisions_fast"]


class TestLiveMatchesSimulated:
    def test_same_workload_same_decision_paths(self):
        """Live and simulated runs agree on every slot's decision path."""
        ops = put_get_workload(
            count=15, keys=("alpha", "beta"), proxies=[0, 1, 2], seed=11
        )

        # Simulated side: spaced schedule, stable leader — same setup the
        # batched-equivalence test proves decides identical logs.
        outcome = run_kv_workload(
            _factory(1.0, batch_size=4, window=2),
            n=3,
            ops=ops,
            until=len(ops) * 3.0 + 60.0,
        )
        assert not outcome.unfinished
        sim_merged = merge_decision_records(
            {
                pid: replica.decision_records()
                for pid, replica in enumerate(outcome.replicas)
            }
        )
        assert sim_merged["conflicts"] == []

        async def live():
            async with LocalCluster(
                3, _factory(0.5, batch_size=4, window=2), serve_clients=True
            ) as cluster:
                report = await run_loadgen(
                    cluster.addresses, clients=1, ops=ops, codec=cluster.codec
                )
                assert report.failed == 0, report.errors
                await cluster.wait_logs_converged(
                    timeout=20.0, expected_commands=len(ops)
                )
                return await scrape_cluster(cluster.addresses, codec=cluster.codec)

        view = _run(live())

        assert view["decisions"]["conflicts"] == []
        assert slot_paths(view["decisions"]) == slot_paths(sim_merged)
        assert view["fast_path_ratio"] == sim_merged["fast_path_ratio"]
        sim_values = {
            slot: record["value_id"] for slot, record in sim_merged["slots"].items()
        }
        live_values = {
            slot: record["value_id"]
            for slot, record in view["decisions"]["slots"].items()
        }
        assert live_values == sim_values
