"""NodeServer socket bookkeeping: writer set, TCP_NODELAY, coalescing.

Pins the transport-level invariants the throughput path depends on: a
broadcast encodes its frame exactly once, inbound writers are tracked in
a set and released when the connection ends, ``stop()`` is safe to call
on an already-closing writer set, and every TCP socket in the system has
Nagle's algorithm disabled.
"""

import asyncio
import socket
from collections import deque

from repro.net.node import NodeServer, enable_nodelay
from repro.net.cluster import LocalCluster
from repro.net.client import KVClient
from repro.net.wire import NodeHello
from repro.omega import static_omega_factory
from repro.protocols.twostep import TwoStepConfig
from repro.smr.log import smr_factory

HARD_TIMEOUT = 60.0


def _run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, HARD_TIMEOUT))


def _factory(delta=0.5):
    return smr_factory(
        1,
        1,
        delta=delta,
        omega_factory=static_omega_factory(0),
        consensus_config=TwoStepConfig(f=1, e=1, delta=delta, is_object=True),
    )


async def _wait_until(predicate, timeout=10.0, poll=0.02):
    async def loop():
        while not predicate():
            await asyncio.sleep(poll)

    await asyncio.wait_for(loop(), timeout)


class _SocketlessWriter:
    def get_extra_info(self, name):
        return None


def test_enable_nodelay_tolerates_missing_socket():
    enable_nodelay(_SocketlessWriter())  # must not raise off-TCP


def test_broadcast_encodes_the_frame_once():
    node = NodeServer(0, 3, _factory())
    node._outbox = {1: deque(), 2: deque()}
    node._outbox_wake = {1: asyncio.Event(), 2: asyncio.Event()}
    node._broadcast(NodeHello(pid=0), include_self=False)
    first, second = node._outbox[1][0], node._outbox[2][0]
    assert first[0] is second[0]  # the same bytes object, not a re-encoding
    assert first[1] is second[1]  # and the same message, for re-encoding links


class TestWriterBookkeeping:
    def test_inbound_writers_are_a_set_with_nodelay(self):
        async def live():
            async with LocalCluster(3, _factory()) as cluster:
                node = cluster.nodes[0]
                assert isinstance(node._writers, set)
                # Peer senders dial eagerly: both other nodes connect in.
                await _wait_until(lambda: len(node._writers) >= 2)
                for writer in node._writers:
                    sock = writer.get_extra_info("socket")
                    assert (
                        sock.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY)
                        != 0
                    )

        _run(live())

    def test_client_disconnect_releases_its_writer(self):
        async def live():
            async with LocalCluster(
                3, _factory(), serve_clients=True
            ) as cluster:
                node = cluster.nodes[0]
                await _wait_until(lambda: len(node._writers) >= 2)
                baseline = len(node._writers)
                client = KVClient(
                    cluster.addresses, client_id="bk", codec=cluster.codec
                )
                try:
                    await client.put("k", "v")
                    await _wait_until(lambda: len(node._writers) == baseline + 1)
                finally:
                    await client.close()
                await _wait_until(lambda: len(node._writers) == baseline)

        _run(live())

    def test_stop_is_idempotent_and_clears_writers(self):
        async def live():
            cluster = LocalCluster(3, _factory())
            await cluster.start()
            node = cluster.nodes[0]
            await _wait_until(lambda: len(node._writers) >= 2)
            await cluster.stop()
            assert node._writers == set()
            # A second stop() must not raise on already-closed sockets.
            await node.stop()
            await cluster.stop()

        _run(live())
