"""Crash-recovery acceptance: kill -9 → restart → rejoin → converge.

The end-to-end exercise the durability subsystem exists for. A 5-node
durable ``LocalCluster`` serves a pipelined load; the highest pid is
SIGKILL-crashed (``kill``: buffered WAL records dropped, nothing flushed)
mid-run, the survivors absorb more load, then the node restarts from its
data directory: it must rebuild its pre-crash state from snapshot + WAL,
fetch what it missed from a peer via snapshot state transfer (the
survivors' retained outbound backlog is shed first, modeling a bounded
retransmit buffer over a long outage — transfer must carry the node, not
backlog replay), rebind its original port, and converge to the identical
applied log and store as the survivors.
"""

import asyncio
from collections import deque

from repro.net.cluster import LocalCluster
from repro.net.loadgen import run_loadgen
from repro.net.node import NodeServer
from repro.net.wire import NodeHello
from repro.net.stats import describe_cluster_stats, scrape_cluster
from repro.omega import static_omega_factory
from repro.protocols.twostep import TwoStepConfig
from repro.smr.client import put_get_workload
from repro.smr.log import smr_factory

HARD_TIMEOUT = 120.0
N = 5
TOTAL = 400
PART1, PART2 = 200, 320  # ops[:PART1] | ops[PART1:PART2] | ops[PART2:]


def _factory(delta: float = 0.05, batch: int = 16):
    return smr_factory(
        1,
        1,
        delta=delta,
        omega_factory=static_omega_factory(0),
        consensus_config=TwoStepConfig(f=1, e=1, delta=delta, is_object=True),
        batch_size=batch,
        window=4,
    )


async def _load(cluster, ops, expected):
    report = await run_loadgen(
        cluster.addresses,
        clients=2,
        ops=ops,
        pipeline=32,
        codec=cluster.codec,
        timeout=10.0,
    )
    assert report.failed == 0, report.errors
    await cluster.wait_logs_converged(timeout=30.0, expected_commands=expected)
    return report


async def _kill_restart_rejoin(data_dir):
    ops = put_get_workload(
        TOTAL, keys=("alpha", "beta", "gamma"), proxies=list(range(N)), seed=7
    )
    cluster = LocalCluster(
        N,
        _factory(),
        serve_clients=True,
        data_dir=str(data_dir),
        snapshot_every=32,
        outbox_limit=2000,
    )
    async with cluster:
        address_before = cluster.addresses[N - 1]
        await _load(cluster, ops[:PART1], PART1)

        await cluster.kill(N - 1)
        await _load(cluster, ops[PART1:PART2], PART2)
        assert len(cluster.survivors) == N - 1

        # Model a long outage: the survivors' bounded retransmit buffers
        # shed the backlog queued for the dead node, so consensus-message
        # replay cannot carry it past the gap — only state transfer can.
        for node in cluster.survivors:
            node._outbox[N - 1].clear()

        restarted = await cluster.restart(N - 1)
        # Port pinning: the node came back at its pre-crash address.
        assert cluster.addresses[N - 1] == address_before

        await _load(cluster, ops[PART2:], TOTAL)
        shared = await cluster.wait_logs_converged(
            timeout=60.0, expected_commands=TOTAL
        )
        assert len(cluster.survivors) == N

        # wait_logs_converged already proved identical applied command
        # sequences (the decided maps themselves are snapshot-truncated
        # on durable clusters, so the simulator-style full-prefix checker
        # does not apply); the stores must agree too.
        replicas = cluster.survivor_replicas()
        stores = [replica.store.snapshot() for replica in replicas]
        assert all(store == stores[0] for store in stores)

        counters = restarted.obs.registry.snapshot()["counters"]
        # Local recovery rebuilt the pre-crash prefix from snapshot + WAL…
        assert (
            counters.get("storage.snapshot_loaded", 0)
            + counters.get("storage.replayed_entries", 0)
        ) > 0
        # …and state transfer (not full-history replay) covered the rest:
        # strictly more than nothing, strictly less than the whole log.
        assert counters.get("storage.snapshot_transfers", 0) >= 1
        transferred = counters.get("storage.transferred_entries", 0)
        assert 0 < transferred < len(restarted.process.store.log)

        view = await scrape_cluster(cluster.addresses, codec=cluster.codec)
        assert view["unreachable"] == []
        assert "storage:" in describe_cluster_stats(view)
        assert len(shared) >= TOTAL


def test_kill_restart_rejoin_converges(tmp_path):
    asyncio.run(asyncio.wait_for(_kill_restart_rejoin(tmp_path), HARD_TIMEOUT))


async def _full_cluster_reboot(data_dir):
    """Every node stops; a fresh cluster over the same data dir resumes."""
    count = 120
    boot = LocalCluster(
        3, _factory(), serve_clients=True, data_dir=str(data_dir), snapshot_every=16
    )
    async with boot:
        report = await run_loadgen(
            boot.addresses,
            clients=2,
            count=count,
            pipeline=32,
            codec=boot.codec,
        )
        assert report.failed == 0
        await boot.wait_logs_converged(timeout=30.0, expected_commands=count)
        expected_log = [c.command_id for c in boot.nodes[0].process.store.log]

    reboot = LocalCluster(
        3, _factory(), serve_clients=True, data_dir=str(data_dir), snapshot_every=16
    )
    async with reboot:
        # No load at all: the applied logs must come back from disk.
        shared = await reboot.wait_logs_converged(timeout=30.0)
        assert shared == expected_log
        for node in reboot.nodes:
            counters = node.obs.registry.snapshot()["counters"]
            assert (
                counters.get("storage.snapshot_loaded", 0)
                + counters.get("storage.replayed_entries", 0)
            ) > 0


def test_full_cluster_reboot_restores_logs(tmp_path):
    asyncio.run(asyncio.wait_for(_full_cluster_reboot(tmp_path), HARD_TIMEOUT))


async def _rebalance_dest_leader_crash(data_dir):
    """kill -9 the destination's leader mid-migration; the move survives.

    A durable 2-group sharded deployment takes load, then a range move
    starts and the destination group's Ω-leader is hard-killed right
    after extraction — before the install commits. The install must
    still commit through the group's two surviving replicas (the
    protocol tolerates f = 1 regardless of which node dies), the killed
    leader must rebuild the install from its WAL plus state transfer on
    restart, and a coordinator that re-runs the whole move after the
    fact (the crashed-coordinator recovery rule) must find every step
    suppressed as a duplicate. The tentpole obligation throughout: the
    range lands wholly in exactly one group, both groups' WAL-backed
    logs converge internally, and every data command applied exactly
    once across the deployment.
    """
    from repro.shard import ShardRouter, ShardedCluster
    from repro.shard.rebalance import move_range
    from repro.smr.kvstore import KVCommand, key_slot

    slots = 16
    cluster = ShardedCluster(
        2, 3, _factory(), slots=slots, data_dir=str(data_dir), snapshot_every=32
    )
    async with cluster:
        boot_map = cluster.placement
        router = ShardRouter(
            cluster.addresses_by_group,
            cluster.placement,
            client_id="crash-move",
        )
        try:
            commands = [
                KVCommand(op="put", key=f"key-{i}", value=i, command_id=f"c{i}")
                for i in range(40)
            ]
            await router.run_pipelined(commands, window=8)

            async def kill_dest_leader(stage: str) -> None:
                if stage == "extracted":
                    await cluster.kill(1, 0)

            report = await cluster.move_range(
                0, 8, dest=1, on_stage=kill_dest_leader
            )
            assert (report.source, report.dest, report.epoch) == (0, 1, 1)
            assert len(cluster.survivor_replicas(1)) == 2

            # The killed leader rebuilds the install it never saw from
            # its own WAL prefix + state transfer from its group.
            await cluster.restart(1, 0)

            # Crashed-coordinator rule: re-running the complete move is
            # pure duplicate suppression — same report, no double apply.
            rerun, _ = await move_range(
                cluster.addresses_by_group, boot_map, 0, 8, 1,
                codec=cluster.codec, client_id="crash-move-rerun",
            )
            # Same move identity; the re-extract reads the already-
            # released (empty) range, and every replicated step lands as
            # a duplicate — verified by the exactly-once checks below.
            assert (rerun.source, rerun.dest, rerun.epoch) == (0, 1, 1)

            await cluster.wait_groups_converged(timeout=60.0)

            # The range lives wholly in exactly one group: the map says
            # dest, the destination's stores hold the keys, the source's
            # stores do not (released), and no command applied twice.
            assert all(
                cluster.placement.group_for_slot(slot) == 1 for slot in range(8)
            )
            moved = [
                c for c in commands if key_slot(c.key, slots) < 8
            ]
            assert moved, "workload never touched the moved range"
            for replica in cluster.survivor_replicas(1):
                for command in moved:
                    assert command.key in replica.store.data
            for replica in cluster.survivor_replicas(0):
                for command in moved:
                    assert command.key not in replica.store.data
            logs = cluster.group_logs()
            all_ids = [cid for log in logs.values() for cid in log]
            assert len(all_ids) == len(set(all_ids))
            assert set(all_ids) == {c.command_id for c in commands}

            # Post-move traffic for a moved key routes (via the fence's
            # redirect) to the destination and sees the moved value.
            probe = moved[0]
            reply = await router.submit(
                KVCommand(op="get", key=probe.key, command_id="probe")
            )
            assert reply.result == probe.value

            # The restarted leader provably came back through recovery.
            counters = cluster.node(1, 0).obs.registry.snapshot()["counters"]
            assert (
                counters.get("storage.snapshot_loaded", 0)
                + counters.get("storage.replayed_entries", 0)
            ) > 0
        finally:
            await router.close()


def test_rebalance_survives_dest_leader_kill(tmp_path):
    asyncio.run(
        asyncio.wait_for(_rebalance_dest_leader_crash(tmp_path), HARD_TIMEOUT)
    )


def test_outbox_limit_sheds_oldest_frames():
    """The bounded retransmit buffer drops from the head and counts it."""
    node = NodeServer(0, 3, _factory(), outbox_limit=2)
    node._outbox[1] = deque()
    node._outbox_wake[1] = asyncio.Event()
    messages = [NodeHello(pid=index) for index in range(5)]
    for index in range(5):
        node._enqueue(1, bytes([index]), messages[index])
    assert list(node._outbox[1]) == [
        (b"\x03", messages[3]),
        (b"\x04", messages[4]),
    ]
    counters = node.obs.registry.snapshot()["counters"]
    assert counters["net.outbox_dropped.p1"] == 3
