"""The live runtime's timer adapter matches the simulator's semantics.

Every case in ``tests/sim/test_timer_semantics.py`` is mirrored here
against :class:`repro.net.node.NodeServer`'s ``loop.call_later`` adapter,
using the same :class:`TimerProbe` process. Real delays are short but the
assertions are ordinal (which fires happened, and in what relative order),
not exact-time, so the tests stay robust on loaded machines.
"""

import asyncio

import pytest

from repro.core.errors import SchedulerError
from repro.core.process import CLIENT
from repro.net.node import NodeServer
from tests.sim.test_timer_semantics import Poke, TimerProbe

#: One "tick" of real time; generous enough for a busy event loop.
TICK = 0.05


async def _with_node(scenario, **probe_kwargs):
    """Boot a single live node, run *scenario(node, probe)*, tear down."""
    node = NodeServer(0, 1, lambda pid, n: TimerProbe(pid, n, **probe_kwargs))
    await node.bind()
    await node.launch([node.address])
    try:
        await scenario(node, node.process)
    finally:
        await node.stop()


def _poke(node, action, name="t", delay=0.0):
    node._deliver(CLIENT, Poke(action, name=name, delay=delay))


class TestLiveSetTimer:
    def test_single_set_fires_once(self):
        async def scenario(node, probe):
            _poke(node, "set", delay=TICK)
            await asyncio.sleep(4 * TICK)
            assert [name for _, name in probe.fired] == ["t"]

        asyncio.run(_with_node(scenario))

    def test_rearm_replaces_deadline(self):
        async def scenario(node, probe):
            _poke(node, "set", delay=3 * TICK)
            await asyncio.sleep(TICK)
            rearmed_at = node.now
            _poke(node, "set", delay=3 * TICK)  # pushes the deadline out
            await asyncio.sleep(8 * TICK)
            assert [name for _, name in probe.fired] == ["t"]  # exactly once
            fired_at = probe.fired[0][0]
            # Fired relative to the re-arm, not the original arming.
            assert fired_at >= rearmed_at + 2 * TICK

        asyncio.run(_with_node(scenario))

    def test_rearm_shorter_fires_earlier(self):
        async def scenario(node, probe):
            _poke(node, "set", delay=10 * TICK)
            _poke(node, "set", delay=TICK)
            await asyncio.sleep(4 * TICK)
            assert [name for _, name in probe.fired] == ["t"]
            assert probe.fired[0][0] < 8 * TICK  # the earlier deadline won

        asyncio.run(_with_node(scenario))

    def test_negative_delay_rejected(self):
        async def scenario(node, probe):
            with pytest.raises(SchedulerError):
                _poke(node, "set", delay=-1.0)
            assert node.errors and isinstance(node.errors[0], SchedulerError)

        asyncio.run(_with_node(scenario))


class TestLiveCancelTimer:
    def test_cancel_pending_suppresses_fire(self):
        async def scenario(node, probe):
            _poke(node, "set", delay=2 * TICK)
            _poke(node, "cancel")
            await asyncio.sleep(5 * TICK)
            assert probe.fired == []

        asyncio.run(_with_node(scenario))

    def test_cancel_absent_is_noop(self):
        async def scenario(node, probe):
            _poke(node, "cancel", name="never-set")
            await asyncio.sleep(TICK)
            assert probe.fired == []
            assert node.errors == []

        asyncio.run(_with_node(scenario))

    def test_cancel_then_set_rearms(self):
        async def scenario(node, probe):
            _poke(node, "set", delay=2 * TICK)
            _poke(node, "cancel")
            _poke(node, "set", delay=TICK)
            await asyncio.sleep(5 * TICK)
            assert [name for _, name in probe.fired] == ["t"]

        asyncio.run(_with_node(scenario))

    def test_timers_are_independent_by_name(self):
        async def scenario(node, probe):
            _poke(node, "set", name="a", delay=TICK)
            _poke(node, "set", name="b", delay=2 * TICK)
            _poke(node, "cancel", name="a")
            await asyncio.sleep(5 * TICK)
            assert [name for _, name in probe.fired] == ["b"]

        asyncio.run(_with_node(scenario))


class TestLiveLifecycle:
    def test_rearm_inside_on_timer_is_periodic(self):
        async def scenario(node, probe):
            await asyncio.sleep(8 * TICK)
            assert [name for _, name in probe.fired] == ["tick"] * 3
            times = [t for t, _ in probe.fired]
            assert times == sorted(times)

        asyncio.run(_with_node(scenario, period=TICK, limit=3))

    def test_stop_cancels_pending_timers(self):
        async def scenario(node, probe):
            _poke(node, "set", delay=2 * TICK)
            await node.stop()
            await asyncio.sleep(4 * TICK)
            assert probe.fired == []

        asyncio.run(_with_node(scenario))
