"""Cluster smoke runs: live KV service under injected crashes.

The CI ``cluster-smoke`` job runs exactly this module: a 3-node and a
5-node (f=1, e=1) :class:`LocalCluster` serving ~200 KV commands in total
while the highest-pid node is crash-stopped mid-run. Every command must
complete (after failover), survivors must converge to identical applied
logs, and the replicated-log safety checker must stay silent. The stats
endpoint is scraped mid-run — with the crashed node still in the address
book — and must report ballot-0 fast decisions and conflict-free merged
per-slot records. Each scenario is wrapped in a hard ``asyncio.wait_for``
so a wedged cluster fails the test instead of hanging the job.

The CI matrix runs this module once per wire codec: ``REPRO_SMOKE_CODEC``
(``json``, the default, or ``binary``) selects the cluster-wide codec, so
live≡sim equivalence and crash-recovery are proven under both formats.
A dedicated mixed-codec scenario (one binary node, one JSON node, one
v1-only node) additionally pins per-link negotiation under crashes.
"""

import asyncio
import os

from repro.net.cluster import LocalCluster
from repro.net.codec import WIRE_VERSION_JSON, MessageCodec, make_codec
from repro.net.loadgen import run_loadgen
from repro.net.stats import scrape_cluster
from repro.omega import static_omega_factory
from repro.protocols.twostep import TwoStepConfig
from repro.smr.client import check_logs_consistent, put_get_workload
from repro.smr.log import smr_factory

#: Hard wall per scenario; normal runtime is a few seconds.
HARD_TIMEOUT = 120.0


def _smoke_codec() -> MessageCodec:
    """The cluster-wide codec for this run, from the CI matrix env var."""
    return make_codec(os.environ.get("REPRO_SMOKE_CODEC", "json"))


def _factory(delta: float = 0.05):
    return smr_factory(
        1,
        1,
        delta=delta,
        omega_factory=static_omega_factory(0),
        consensus_config=TwoStepConfig(f=1, e=1, delta=delta, is_object=True),
    )


async def _crash_and_serve(n: int, count: int, seed: int, clients: int, codecs=None):
    """Serve *count* commands on an *n*-node cluster; crash node n-1 mid-run.

    The workload is split so the crash deterministically lands mid-run:
    ~30% of the commands complete first, then the highest pid (never the
    Ω leader, pid 0) is crash-stopped, then the rest of the workload —
    including commands still designated to the dead proxy — must complete
    via client failover.
    """
    ops = put_get_workload(
        count,
        keys=("alpha", "beta", "gamma"),
        proxies=list(range(n)),
        seed=seed,
    )
    cut = max(1, count // 3)
    async with LocalCluster(
        n, _factory(), serve_clients=True, codec=_smoke_codec(), codecs=codecs
    ) as cluster:
        before = await run_loadgen(
            cluster.addresses,
            clients=clients,
            ops=ops[:cut],
            codec=cluster.codec,
            timeout=5.0,
            client_id_prefix=f"smoke{n}a",
        )
        await cluster.crash(n - 1)
        # Mid-run scrape: the dead node is still in the address book, so
        # the scraper must tolerate it while the survivors keep serving.
        mid = await scrape_cluster(cluster.addresses, codec=cluster.codec)
        assert mid["unreachable"] == [n - 1]
        assert mid["nodes"][n - 1] is None
        counters = mid["merged"]["counters"]
        assert counters.get("consensus.decisions_fast", 0) > 0
        assert mid["decisions"]["conflicts"] == []
        after = await run_loadgen(
            cluster.addresses,
            clients=clients,
            ops=ops[cut:],
            codec=cluster.codec,
            timeout=5.0,
            client_id_prefix=f"smoke{n}b",
        )

        for report in (before, after):
            assert report.failed == 0, report.errors
        assert before.completed + after.completed == count
        shared_log = await cluster.wait_logs_converged(
            timeout=30.0, expected_commands=count
        )
        commands = [cid for cid in shared_log if not cid.startswith("__noop")]
        assert len(commands) >= count

        replicas = cluster.survivor_replicas()
        assert [node.pid for node in cluster.survivors] == list(range(n - 1))
        assert not check_logs_consistent(replicas)
        # Identical applied logs across all survivors, entry for entry.
        logs = [
            [command.command_id for command in replica.store.log]
            for replica in replicas
        ]
        assert all(log == logs[0] for log in logs)
        stores = [dict(replica.store.data) for replica in replicas]
        assert all(store == stores[0] for store in stores)

        # Post-convergence scrape: merged per-slot decision records must
        # be conflict-free (no two survivors claim different values for
        # one slot) and the fast path must have fired under the stable
        # pid-0 leader.
        final = await scrape_cluster(cluster.addresses, codec=cluster.codec)
        assert final["decisions"]["conflicts"] == []
        assert final["merged"]["counters"]["consensus.decisions_fast"] > 0
        assert final["fast_path_ratio"] is not None
        assert final["decisions"]["slots"]
        return after


def test_smoke_three_nodes_with_crash():
    report = asyncio.run(
        asyncio.wait_for(_crash_and_serve(3, 80, seed=11, clients=4), HARD_TIMEOUT)
    )
    assert report.throughput > 0


def test_smoke_five_nodes_with_crash():
    report = asyncio.run(
        asyncio.wait_for(_crash_and_serve(5, 120, seed=12, clients=6), HARD_TIMEOUT)
    )
    assert report.throughput > 0


def test_smoke_mixed_codec_cluster_with_crash():
    """Per-link negotiation survives a crash in a codec-heterogeneous cluster.

    Node 0 prefers binary, node 1 JSON, node 2 is a true v1-only build;
    the crash scenario then kills node 2, so failover and convergence run
    over links that negotiated different wire versions.
    """
    codecs = {
        0: make_codec("binary"),
        1: make_codec("json"),
        2: MessageCodec(max_wire_version=WIRE_VERSION_JSON),
    }
    report = asyncio.run(
        asyncio.wait_for(
            _crash_and_serve(3, 60, seed=13, clients=4, codecs=codecs),
            HARD_TIMEOUT,
        )
    )
    assert report.throughput > 0
