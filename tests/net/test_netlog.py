"""The live runtime's structured logger: prefixing and idempotent setup."""

import logging
import os

from repro.net.netlog import LOGGER_NAME, configure_logging, node_logger


class TestNodeLogger:
    def test_records_carry_node_and_os_pid_prefix(self, caplog):
        logger = node_logger(3)
        with caplog.at_level(logging.INFO, logger=LOGGER_NAME):
            logger.info("peer %d unreachable", 0)
        assert len(caplog.records) == 1
        message = caplog.records[0].getMessage()
        assert message.startswith(f"[node 3 pid={os.getpid()}] ")
        assert message.endswith("peer 0 unreachable")

    def test_quiet_by_default(self):
        # Library discipline: a NullHandler, no propagation surprises —
        # nothing reaches stderr until configure_logging() opts in.
        package_logger = logging.getLogger(LOGGER_NAME)
        assert any(
            isinstance(handler, logging.NullHandler)
            for handler in package_logger.handlers
        )


class TestConfigureLogging:
    def _stream_handlers(self):
        return [
            handler
            for handler in logging.getLogger(LOGGER_NAME).handlers
            if getattr(handler, "_repro_stream_handler", False)
        ]

    def test_idempotent_and_level_adjustable(self):
        logger = logging.getLogger(LOGGER_NAME)
        original_level = logger.level
        original_handlers = list(logger.handlers)
        try:
            configure_logging("info")
            configure_logging("debug")  # must reconfigure, not stack
            handlers = self._stream_handlers()
            assert len(handlers) == 1
            assert handlers[0].level == logging.DEBUG
            assert logger.level == logging.DEBUG
        finally:
            for handler in self._stream_handlers():
                logger.removeHandler(handler)
            logger.setLevel(original_level)
            assert logger.handlers == original_handlers
