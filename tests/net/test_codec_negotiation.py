"""Per-connection codec negotiation on the live runtime.

The contract under test: ``--codec`` is a *preference*, not a protocol
fork. Every pairing of {json-preferring, binary-preferring, v1-only}
nodes and clients must converge on the same replicated log, because each
link independently negotiates the best format both ends speak and falls
back to JSON whenever in doubt (old peer, registry skew, no ack).
"""

import asyncio

from repro.net.client import KVClient
from repro.net.cluster import LocalCluster
from repro.net.codec import (
    WIRE_VERSION_BINARY,
    WIRE_VERSION_JSON,
    MessageCodec,
    make_codec,
)
from repro.net.loadgen import run_loadgen
from repro.omega import static_omega_factory
from repro.protocols.twostep import TwoStepConfig
from repro.smr import check_logs_consistent
from repro.smr.log import smr_factory

HARD_TIMEOUT = 60.0


def _factory(delta: float = 0.05):
    return smr_factory(
        1,
        1,
        delta=delta,
        omega_factory=static_omega_factory(0),
        consensus_config=TwoStepConfig(f=1, e=1, delta=delta, is_object=True),
        batch_size=16,
        window=1,
    )


def _run(coroutine):
    asyncio.run(asyncio.wait_for(coroutine, HARD_TIMEOUT))


async def _drive(cluster: LocalCluster, count: int = 40) -> None:
    async with cluster:
        report = await run_loadgen(
            cluster.addresses,
            clients=2,
            count=count,
            pipeline=8,
            codec=cluster.codec,
        )
        assert report.failed == 0, report.errors
        await cluster.wait_logs_converged(timeout=20.0, expected_commands=count)
        assert check_logs_consistent(cluster.survivor_replicas()) == []


def test_all_binary_cluster_converges():
    _run(_drive(LocalCluster(3, _factory(), serve_clients=True, codec=make_codec("binary"))))


def test_mixed_codec_cluster_converges():
    # Node 0 prefers binary, node 1 JSON, node 2 is a true v1-only build
    # (cannot even decode v2): every pairing must negotiate something
    # both ends speak, including the v1-only node acking JSON.
    codecs = {
        0: make_codec("binary"),
        1: make_codec("json"),
        2: MessageCodec(max_wire_version=WIRE_VERSION_JSON),
    }
    _run(
        _drive(
            LocalCluster(
                3,
                _factory(),
                serve_clients=True,
                codec=make_codec("binary"),
                codecs=codecs,
            )
        )
    )


def test_binary_peers_actually_negotiate_v2():
    async def live():
        cluster = LocalCluster(
            3, _factory(), serve_clients=False, codec=make_codec("binary")
        )
        async with cluster:
            node = cluster.nodes[0]
            # Drive the real handshake helper against the live peer.
            reader, writer = await asyncio.open_connection(
                *cluster.addresses[1]
            )
            try:
                from repro.net.wire import NodeHello

                version, trace_ok = await node._shake_hands(
                    reader,
                    writer,
                    NodeHello(
                        0,
                        max_wire_version=node.codec.max_wire_version,
                        registry_hash=node.codec.registry_hash,
                    ),
                )
                assert version == WIRE_VERSION_BINARY
                # Neither end records spans: the link must stay untraced.
                assert trace_ok is False
            finally:
                writer.close()

    _run(live())


def test_registry_skew_downgrades_to_json():
    async def live():
        cluster = LocalCluster(
            3, _factory(), serve_clients=False, codec=make_codec("binary")
        )
        async with cluster:
            node = cluster.nodes[0]
            reader, writer = await asyncio.open_connection(*cluster.addresses[1])
            try:
                from repro.net.wire import NodeHello

                version, _ = await node._shake_hands(
                    reader,
                    writer,
                    NodeHello(0, max_wire_version=2, registry_hash="00ff00ff00ff00ff"),
                )
                assert version == WIRE_VERSION_JSON
            finally:
                writer.close()

    _run(live())


def test_silent_receiver_falls_back_to_json():
    # A server that never answers the hello (pre-negotiation build)
    # must downgrade the dialer to JSON after the hello timeout, not hang.
    async def live():
        async def mute(reader, writer):
            await asyncio.sleep(10)

        server = await asyncio.start_server(mute, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            client = KVClient(
                [("127.0.0.1", port)],
                client_id="probe",
                codec=make_codec("binary"),
                hello_timeout=0.2,
            )
            await client._ensure_connected()
            assert client._link_version == WIRE_VERSION_JSON
            await client.close()
        finally:
            server.close()
            await server.wait_closed()

    _run(live())


def test_binary_client_negotiates_with_binary_cluster():
    async def live():
        cluster = LocalCluster(
            3, _factory(), serve_clients=True, codec=make_codec("binary")
        )
        async with cluster:
            client = KVClient(
                cluster.addresses, client_id="c0", codec=make_codec("binary")
            )
            try:
                reply = await client.put("k", "v")
                assert client._link_version == WIRE_VERSION_BINARY
                assert reply.result is None or reply.result == "v"
                reply = await client.get("k")
                assert reply.result == "v"
            finally:
                await client.close()

    _run(live())


def test_v1_only_client_talks_to_binary_cluster():
    async def live():
        cluster = LocalCluster(
            3, _factory(), serve_clients=True, codec=make_codec("binary")
        )
        async with cluster:
            client = KVClient(
                cluster.addresses,
                client_id="legacy",
                codec=MessageCodec(max_wire_version=WIRE_VERSION_JSON),
            )
            try:
                await client.put("old", "school")
                assert client._link_version == WIRE_VERSION_JSON
                reply = await client.get("old")
                assert reply.result == "school"
            finally:
                await client.close()

    _run(live())
