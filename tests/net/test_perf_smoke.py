"""Perf smoke: the batched/pipelined path stays an order faster than PR 2.

CI-grade guard for the throughput path: a pipelined load generator
against a 3-node batching ``LocalCluster`` must clear a deliberately
generous throughput floor (~1/8 of what an idle dev machine measures in
``benchmarks/bench_net.py``) with zero failures. The goal is to catch a
path regression that silently serializes the pipeline — not to measure;
the benchmark owns the real numbers. Every scenario carries its own hard
``asyncio`` timeout so a wedged cluster fails fast instead of hanging CI.
"""

import asyncio

from repro.net.cluster import LocalCluster
from repro.net.loadgen import run_loadgen
from repro.omega import static_omega_factory
from repro.protocols.twostep import TwoStepConfig
from repro.smr import check_logs_consistent
from repro.smr.log import smr_factory

HARD_TIMEOUT = 60.0
COMMANDS = 1500
#: Generous floor: dev machines measure ~2,200/s; shared CI runners are
#: slower, but an accidentally-serialized path lands near the ~350/s
#: closed-loop figure and fails this clearly.
THROUGHPUT_FLOOR = 250.0


def _batched_factory():
    delta = 0.05
    return smr_factory(
        1,
        1,
        delta=delta,
        omega_factory=static_omega_factory(0),
        consensus_config=TwoStepConfig(f=1, e=1, delta=delta, is_object=True),
        batch_size=64,
        window=1,
    )


def test_pipelined_throughput_clears_the_floor():
    async def live():
        async with LocalCluster(
            3, _batched_factory(), serve_clients=True
        ) as cluster:
            report = await run_loadgen(
                cluster.addresses,
                clients=2,
                count=COMMANDS,
                pipeline=64,
                codec=cluster.codec,
            )
            assert report.failed == 0
            assert report.completed == COMMANDS
            assert report.throughput >= THROUGHPUT_FLOOR, (
                f"pipelined throughput {report.throughput:,.0f}/s below the "
                f"{THROUGHPUT_FLOOR:,.0f}/s smoke floor"
            )
            await cluster.wait_logs_converged(
                timeout=30.0, expected_commands=COMMANDS
            )
            assert check_logs_consistent(cluster.survivor_replicas()) == []

    asyncio.run(asyncio.wait_for(live(), HARD_TIMEOUT))
