"""Perf smoke: the batched/pipelined path stays an order faster than PR 2.

CI-grade guard for the throughput path: a pipelined load generator
against a 3-node batching ``LocalCluster`` must clear a deliberately
generous throughput floor (~1/8 of what an idle dev machine measures in
``benchmarks/bench_net.py``) with zero failures. The goal is to catch a
path regression that silently serializes the pipeline — not to measure;
the benchmark owns the real numbers. Every scenario carries its own hard
``asyncio`` timeout so a wedged cluster fails fast instead of hanging CI.

The observability budget rides along: metrics are on by default with a
stated ceiling of 5% throughput cost (``docs/OBSERVABILITY.md``), which
``benchmarks/bench_net.py`` measures precisely. Here the default-on run
is compared against a run with every node's registry nulled out, with a
deliberately loose guard (no worse than 30% below metrics-off) so shared
CI runners don't flake — a counter path that accidentally turns O(1)
increments into per-message encoding work still fails it clearly.
"""

import asyncio
import tempfile

from repro.net.cluster import LocalCluster
from repro.net.codec import make_codec
from repro.net.loadgen import run_loadgen
from repro.obs import Observability
from repro.omega import static_omega_factory
from repro.protocols.twostep import TwoStepConfig
from repro.smr import check_logs_consistent
from repro.smr.log import smr_factory

HARD_TIMEOUT = 120.0
COMMANDS = 1500
#: Generous floor: dev machines measure ~2,200/s; shared CI runners are
#: slower, but an accidentally-serialized path lands near the ~350/s
#: closed-loop figure and fails this clearly.
THROUGHPUT_FLOOR = 250.0
#: The binary codec's floor is 1.5× the JSON floor — the same ratio the
#: codec is required to deliver over the PR-3 baseline in
#: ``benchmarks/results/baseline_net.json``, scaled down to smoke levels
#: so shared runners don't flake.
BINARY_THROUGHPUT_FLOOR = 1.5 * THROUGHPUT_FLOOR
#: Loose CI guard for the metrics-on/metrics-off ratio; the real ≤5%
#: budget is tracked by the benchmark, not this smoke test.
OVERHEAD_GUARD = 0.70


def _batched_factory():
    delta = 0.05
    return smr_factory(
        1,
        1,
        delta=delta,
        omega_factory=static_omega_factory(0),
        consensus_config=TwoStepConfig(f=1, e=1, delta=delta, is_object=True),
        batch_size=64,
        window=1,
    )


#: Loose CI guard for the fsync-on/fsync-off ratio on a durable cluster.
#: Group commit amortizes one fsync over a whole activation's records;
#: a regression to per-record fsyncs collapses throughput far below this.
FSYNC_GUARD = 0.25


async def _pipelined_run(
    metrics: bool = True,
    data_dir: str | None = None,
    fsync: bool = True,
    codec_name: str = "json",
    trace_sample: int | None = None,
    client_trace_sample: int = 0,
) -> float:
    """One 1500-command pipelined run; returns throughput (commands/s)."""
    cluster = LocalCluster(
        3,
        _batched_factory(),
        serve_clients=True,
        data_dir=data_dir,
        fsync=fsync,
        codec=make_codec(codec_name),
        trace_sample=trace_sample,
    )
    if not metrics:
        # LocalCluster has no obs knob by design (metrics are the
        # default); null every node's registry before launch instead.
        for node in cluster.nodes:
            node.obs = Observability.disabled(node=node.pid)
    async with cluster:
        report = await run_loadgen(
            cluster.addresses,
            clients=2,
            count=COMMANDS,
            pipeline=64,
            codec=cluster.codec,
            trace_sample=client_trace_sample,
        )
        assert report.failed == 0, report.errors
        assert report.completed == COMMANDS
        await cluster.wait_logs_converged(timeout=30.0, expected_commands=COMMANDS)
        assert check_logs_consistent(cluster.survivor_replicas()) == []
        return report.throughput


def test_pipelined_throughput_clears_the_floor():
    async def live():
        throughput = await _pipelined_run()
        assert throughput >= THROUGHPUT_FLOOR, (
            f"pipelined throughput {throughput:,.0f}/s below the "
            f"{THROUGHPUT_FLOOR:,.0f}/s smoke floor"
        )

    asyncio.run(asyncio.wait_for(live(), HARD_TIMEOUT))


def test_binary_codec_clears_a_higher_floor():
    """``--codec binary`` must clear 1.5× the JSON smoke floor.

    This is the CI-level gate for the codec acceptance criterion; the
    measured speedup itself is recorded by ``benchmarks/bench_net.py``
    under the ``codec`` dimension of ``baseline_net.json``.
    """

    async def live():
        throughput = await _pipelined_run(codec_name="binary")
        assert throughput >= BINARY_THROUGHPUT_FLOOR, (
            f"binary-codec pipelined throughput {throughput:,.0f}/s below "
            f"the {BINARY_THROUGHPUT_FLOOR:,.0f}/s smoke floor"
        )

    asyncio.run(asyncio.wait_for(live(), HARD_TIMEOUT))


def test_metrics_overhead_stays_bounded():
    """Default-on metrics must not meaningfully tax the hot path."""

    async def live():
        with_metrics = await _pipelined_run(metrics=True)
        without_metrics = await _pipelined_run(metrics=False)
        assert with_metrics >= OVERHEAD_GUARD * without_metrics, (
            f"metrics-on throughput {with_metrics:,.0f}/s fell below "
            f"{OVERHEAD_GUARD:.0%} of metrics-off {without_metrics:,.0f}/s"
        )

    asyncio.run(asyncio.wait_for(live(), HARD_TIMEOUT))


def test_tracing_overhead_stays_bounded():
    """Span tracing must fit inside the same observability budget.

    A traced run — every node self-sampling every 8th sealed slot AND
    the clients stamping every 8th command — is compared against the
    default spans-off run. The stated ceiling is the 5% budget shared
    with metrics (``docs/OBSERVABILITY.md``); the guard here is the same
    deliberately loose CI ratio as the metrics one, catching a tracing
    path that accidentally encodes spans per message rather than per
    sampled slot.
    """

    async def live():
        untraced = await _pipelined_run()
        traced = await _pipelined_run(trace_sample=8, client_trace_sample=8)
        assert traced >= OVERHEAD_GUARD * untraced, (
            f"traced throughput {traced:,.0f}/s fell below "
            f"{OVERHEAD_GUARD:.0%} of untraced {untraced:,.0f}/s"
        )

    asyncio.run(asyncio.wait_for(live(), HARD_TIMEOUT))


def test_fsync_overhead_stays_bounded():
    """Group-commit fsync durability must stay within its budget.

    Same durable cluster twice — WAL on in both runs, ``fsync`` on vs
    off (the CLI's ``--no-fsync``) — so the ratio isolates the fsync
    syscall cost from the journaling cost. The precise number lives in
    ``benchmarks/bench_net.py`` (``results/durability_net.json``); this
    guard only catches a collapse, e.g. losing the group in group commit.
    """

    async def live():
        with tempfile.TemporaryDirectory(prefix="repro-smoke-wal-") as nofsync_dir:
            without_fsync = await _pipelined_run(data_dir=nofsync_dir, fsync=False)
        with tempfile.TemporaryDirectory(prefix="repro-smoke-wal-") as fsync_dir:
            with_fsync = await _pipelined_run(data_dir=fsync_dir, fsync=True)
        assert with_fsync >= FSYNC_GUARD * without_fsync, (
            f"fsync-on throughput {with_fsync:,.0f}/s fell below "
            f"{FSYNC_GUARD:.0%} of fsync-off {without_fsync:,.0f}/s"
        )

    asyncio.run(asyncio.wait_for(live(), HARD_TIMEOUT))
