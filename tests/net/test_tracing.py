"""Live tracing end to end: spans on the wire, negotiated per link.

The headline scenario is the acceptance criterion for the tracing
subsystem: a pipelined loadgen run with ``trace_sample`` against a live
:class:`LocalCluster` whose nodes record spans must come back with
merged per-command critical paths carrying the full stage decomposition
(queue → consensus → apply → reply), all on the fast path under
conflict-free load.  The interop scenarios pin the negotiation matrix:
traced↔untraced nodes and json↔binary links must carry the same
workload correctly, with trace frames stripped for span-less peers.
"""

import asyncio

import pytest

from repro.net.cluster import LocalCluster
from repro.net.client import KVClient
from repro.net.codec import WIRE_VERSION_JSON, MessageCodec, make_codec
from repro.net.loadgen import run_loadgen
from repro.net.stats import scrape_cluster
from repro.obs import critical_paths, merge_span_events
from repro.omega import static_omega_factory
from repro.protocols.twostep import TwoStepConfig
from repro.smr.client import check_logs_consistent
from repro.smr.kvstore import KVCommand
from repro.smr.log import smr_factory

HARD_TIMEOUT = 120.0


def _factory(delta: float = 0.05):
    return smr_factory(
        1,
        1,
        delta=delta,
        omega_factory=static_omega_factory(0),
        consensus_config=TwoStepConfig(f=1, e=1, delta=delta, is_object=True),
    )


def _run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, HARD_TIMEOUT))


class TestTracedLoadgen:
    def test_pipelined_loadgen_produces_critical_paths(self):
        async def scenario():
            async with LocalCluster(
                3, _factory(), serve_clients=True, trace_sample=0
            ) as cluster:
                report = await run_loadgen(
                    cluster.addresses,
                    clients=2,
                    count=60,
                    pipeline=8,
                    trace_sample=5,
                    codec=cluster.codec,
                    client_id_prefix="tr",
                )
                await cluster.wait_logs_converged(30.0, expected_commands=60)
                return report

        report = _run(scenario())
        assert report.failed == 0
        assert report.trace_paths, "no critical paths came back"
        # Client-minted ids: every 5th of 60 commands = 12 stamped; all
        # land in some sealed slot (batching may coalesce several into
        # one slot, which keeps only the first adopted trace).
        assert len(report.trace_paths) >= 2
        for path in report.trace_paths:
            assert path["trace"].startswith("c.tr.")
            assert path["path"] == "fast"
            assert path["ballot"] == 0
            stages = path["stages"]
            for stage in ("queue", "consensus", "apply", "reply", "total"):
                assert stage in stages, f"missing {stage} in {stages}"
                assert stages[stage] >= 0.0
            # Conflict-free local cluster: the whole command took under
            # a second, and consensus dominates neither absurdly.
            assert stages["total"] < 5.0
        breakdown = report.trace_breakdown
        assert breakdown["counts"].get("fast", 0) == len(report.trace_paths)
        assert breakdown["paths"]["fast"]["consensus"]["p99"] >= 0.0
        record = report.to_record()
        assert record["traced_commands"] == len(report.trace_paths)

    def test_self_sampling_nodes_trace_without_client_ids(self):
        async def scenario():
            async with LocalCluster(
                3, _factory(), serve_clients=True, trace_sample=1
            ) as cluster:
                report = await run_loadgen(
                    cluster.addresses,
                    clients=2,
                    count=30,
                    pipeline=4,
                    codec=cluster.codec,
                    client_id_prefix="selfsample",
                )
                assert report.failed == 0
                view = await scrape_cluster(
                    cluster.addresses, codec=cluster.codec, include_spans=True
                )
                return view

        view = _run(scenario())
        assert view["spans"], "no node returned span events"
        paths = critical_paths(merge_span_events(view["spans"]))
        assert paths
        # Proxy-minted ids (t<origin>.<slot>), not client ones.
        assert all(path["trace"].startswith("t") for path in paths)
        assert any(path["path"] == "fast" for path in paths)


class TestTraceInterop:
    def test_traced_and_untraced_nodes_interoperate(self):
        async def scenario():
            # Node 2 records no spans at all: peers must strip Traced
            # envelopes on its links, clients get trace_ok=False from it.
            async with LocalCluster(
                3,
                _factory(),
                serve_clients=True,
                trace_sample=0,
                trace_samples={2: None},
            ) as cluster:
                report = await run_loadgen(
                    cluster.addresses,
                    clients=3,
                    count=45,
                    trace_sample=3,
                    codec=cluster.codec,
                    client_id_prefix="mix",
                )
                await cluster.wait_logs_converged(30.0, expected_commands=45)
                assert not check_logs_consistent(cluster.survivor_replicas())
                traced = cluster.nodes[0]
                untraced = cluster.nodes[2]
                return report, traced.wire_info(), untraced.wire_info()

        report, traced_wire, untraced_wire = _run(scenario())
        assert report.failed == 0
        # Spans still came back from the traced majority.
        assert report.trace_paths
        # The traced node's links to the span-less node are untraced.
        assert 2 not in traced_wire["traced_links"]
        assert 1 in traced_wire["traced_links"]
        assert untraced_wire["traced_links"] == []

    def test_tracing_rides_mixed_codec_links(self):
        async def scenario():
            codecs = {
                0: make_codec("binary"),
                1: make_codec("json"),
                2: MessageCodec(max_wire_version=WIRE_VERSION_JSON),
            }
            async with LocalCluster(
                3,
                _factory(),
                serve_clients=True,
                codec=make_codec("binary"),
                codecs=codecs,
                trace_sample=0,
            ) as cluster:
                report = await run_loadgen(
                    cluster.addresses,
                    clients=2,
                    count=40,
                    pipeline=4,
                    trace_sample=4,
                    codec=make_codec("binary"),
                    client_id_prefix="mc",
                )
                await cluster.wait_logs_converged(30.0, expected_commands=40)
                return report, cluster.nodes[0].wire_info()

        report, wire = _run(scenario())
        assert report.failed == 0
        assert report.trace_paths, "tracing must survive codec negotiation"
        # Node 0 speaks binary to nobody (1 and 2 are JSON-only links),
        # yet traces flow: node 2's v1-only dialer never reads acks, so
        # its own links are untraced, but 0->1 and 0->2 negotiated...
        assert wire["codec"] == "binary"

    def test_client_reply_echoes_trace_id(self):
        async def scenario():
            async with LocalCluster(
                3, _factory(), serve_clients=True, trace_sample=0
            ) as cluster:
                client = KVClient(
                    cluster.addresses, client_id="echo", codec=cluster.codec
                )
                try:
                    reply = await client.submit(
                        KVCommand("put", "k", "v", command_id="echo-1"),
                        proxy=0,
                        trace_id="c.echo.0",
                    )
                    assert client.trace_supported
                    untagged = await client.submit(
                        KVCommand("put", "k", "w", command_id="echo-2"),
                        proxy=0,
                    )
                finally:
                    await client.close()
                return reply, untagged

        reply, untagged = _run(scenario())
        assert reply.trace_id == "c.echo.0"
        assert untagged.trace_id == ""

    def test_spanless_cluster_ignores_client_trace_ids(self):
        async def scenario():
            async with LocalCluster(
                3, _factory(), serve_clients=True  # spans off entirely
            ) as cluster:
                client = KVClient(
                    cluster.addresses, client_id="legacy", codec=cluster.codec
                )
                try:
                    reply = await client.submit(
                        KVCommand("put", "k", "v", command_id="legacy-1"),
                        proxy=0,
                        trace_id="c.legacy.0",
                    )
                    supported = client.trace_supported
                finally:
                    await client.close()
                view = await scrape_cluster(
                    cluster.addresses, codec=cluster.codec, include_spans=True
                )
                return reply, supported, view

        reply, supported, view = _run(scenario())
        assert supported is False
        assert reply.trace_id == ""  # id was stripped client-side
        assert "spans" not in view
