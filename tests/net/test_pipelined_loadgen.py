"""Open-loop pipelined clients against a live batched cluster.

Covers the client half of the throughput path: ``KVClient.run_pipelined``
keeps a window of commands outstanding on one connection, the load
generator's ``pipeline > 1`` mode drives whole workloads that way, and
failover re-submits the outstanding window idempotently when the pinned
proxy is gone.
"""

import asyncio

import pytest

from repro.core.errors import ConfigurationError
from repro.net.client import ClientError, KVClient
from repro.net.cluster import LocalCluster
from repro.net.loadgen import run_loadgen
from repro.omega import static_omega_factory
from repro.protocols.twostep import TwoStepConfig
from repro.smr import KVCommand, check_logs_consistent
from repro.smr.log import smr_factory

HARD_TIMEOUT = 90.0


def _run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, HARD_TIMEOUT))


def _batched_factory(delta=0.5, batch_size=8, window=4):
    return smr_factory(
        1,
        1,
        delta=delta,
        omega_factory=static_omega_factory(0),
        consensus_config=TwoStepConfig(f=1, e=1, delta=delta, is_object=True),
        batch_size=batch_size,
        window=window,
    )


class TestPipelinedLoadgen:
    def test_pipelined_run_completes_and_logs_converge(self):
        count = 60

        async def live():
            async with LocalCluster(
                3, _batched_factory(), serve_clients=True
            ) as cluster:
                report = await run_loadgen(
                    cluster.addresses,
                    clients=2,
                    count=count,
                    pipeline=8,
                    seed=5,
                    codec=cluster.codec,
                )
                assert report.failed == 0
                assert report.completed == count
                assert report.pipeline == 8
                assert report.to_record()["pipeline"] == 8
                await cluster.wait_logs_converged(
                    timeout=30.0, expected_commands=count
                )
                replicas = cluster.survivor_replicas()
                assert check_logs_consistent(replicas) == []
                for replica in replicas:
                    applied = [c.command_id for c in replica.store.log]
                    assert len(applied) == len(set(applied))

        _run(live())

    def test_pipeline_depth_must_be_positive(self):
        async def live():
            with pytest.raises(ConfigurationError, match="pipeline"):
                await run_loadgen([("127.0.0.1", 1)], pipeline=0)

        _run(live())

    def test_pipelined_failures_surface_per_command(self):
        """An unreachable cluster yields per-command errors, like closed-loop.

        The pipelined worker must not collapse a failed window into one
        opaque exception: every unfinished command shows up in
        ``report.errors`` (and the report's ``errors_sample``), and
        ``failed`` counts them — the same contract the closed-loop path
        keeps.
        """
        count = 6

        async def live():
            # Nothing listens on port 1; every attempt fails fast.
            return await run_loadgen(
                [("127.0.0.1", 1)],
                clients=2,
                count=count,
                pipeline=4,
                timeout=0.2,
                max_attempts=2,
            )

        report = _run(live())
        assert report.completed == 0
        assert report.failed == count
        assert len(report.errors) == count
        assert all("incomplete" in error for error in report.errors)
        record = report.to_record()
        assert record["failed"] == count
        assert record["errors_sample"] == report.errors[:5]


class TestRunPipelined:
    def test_empty_command_list_returns_no_replies(self):
        async def live():
            client = KVClient([("127.0.0.1", 1)], client_id="empty")
            try:
                assert await client.run_pipelined([]) == {}
            finally:
                await client.close()

        _run(live())

    def test_window_and_ids_validated(self):
        async def live():
            client = KVClient([("127.0.0.1", 1)], client_id="bad")
            try:
                with pytest.raises(ClientError, match="window"):
                    await client.run_pipelined(
                        [KVCommand(op="get", key="k", command_id="x")], window=0
                    )
                with pytest.raises(ClientError, match="command_id"):
                    await client.run_pipelined([KVCommand(op="get", key="k")])
            finally:
                await client.close()

        _run(live())

    def test_pipelined_replies_match_closed_loop_results(self):
        commands = [
            KVCommand(op="put", key="k", value=i, command_id=f"pl-{i}")
            for i in range(12)
        ] + [KVCommand(op="get", key="k", command_id="pl-get")]

        async def live():
            async with LocalCluster(
                3, _batched_factory(), serve_clients=True
            ) as cluster:
                client = KVClient(
                    cluster.addresses, client_id="pl", codec=cluster.codec
                )
                try:
                    replies = await client.run_pipelined(commands, window=4)
                finally:
                    await client.close()
                assert set(replies) == {c.command_id for c in commands}
                assert replies["pl-get"].result == 11  # last put wins
                assert all(not r.duplicate for r in replies.values())

        _run(live())

    def test_pipelined_window_fails_over_after_proxy_crash(self):
        commands = [
            KVCommand(op="put", key="k", value=i, command_id=f"fo-{i}")
            for i in range(10)
        ]

        async def live():
            async with LocalCluster(
                3, _batched_factory(delta=1.0), serve_clients=True
            ) as cluster:
                await cluster.crash(2)  # f=1 tolerated; not the Ω leader
                client = KVClient(
                    cluster.addresses,
                    client_id="fo",
                    codec=cluster.codec,
                    timeout=2.0,
                )
                try:
                    replies = await client.run_pipelined(
                        commands, window=4, proxy=2
                    )
                finally:
                    await client.close()
                assert set(replies) == {c.command_id for c in commands}
                assert client.proxy != 2  # the whole window failed over

        _run(live())
