"""Tests for the event queue ordering rules."""

from repro.core.process import ProcessId
from repro.protocols.twostep import Propose, TwoB
from repro.sim.events import (
    PRIORITY_CRASH,
    PRIORITY_DELIVERY,
    PRIORITY_START,
    PRIORITY_TIMER,
    CrashEvent,
    DeliveryEvent,
    EventQueue,
    StartEvent,
    TimerEvent,
    prefer_sender,
    prefer_value_order,
)


def _delivery(sender=0, receiver=1, value=1):
    return DeliveryEvent(sender=sender, receiver=receiver, message=Propose(value), send_time=0.0)


class TestQueueOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(2.0, PRIORITY_DELIVERY, _delivery(value=2))
        q.push(1.0, PRIORITY_DELIVERY, _delivery(value=1))
        assert q.pop()[0] == 1.0
        assert q.pop()[0] == 2.0

    def test_priority_classes_at_equal_time(self):
        q = EventQueue()
        q.push(1.0, PRIORITY_TIMER, TimerEvent(0, "t", 1))
        q.push(1.0, PRIORITY_DELIVERY, _delivery())
        q.push(1.0, PRIORITY_START, StartEvent(0))
        q.push(1.0, PRIORITY_CRASH, CrashEvent(0))
        kinds = [type(q.pop()[1]).__name__ for _ in range(4)]
        assert kinds == ["CrashEvent", "StartEvent", "DeliveryEvent", "TimerEvent"]

    def test_fifo_within_class(self):
        q = EventQueue()
        first, second = _delivery(value=1), _delivery(value=2)
        q.push(1.0, PRIORITY_DELIVERY, first)
        q.push(1.0, PRIORITY_DELIVERY, second)
        assert q.pop()[1] is first
        assert q.pop()[1] is second

    def test_tiebreak_overrides_fifo(self):
        q = EventQueue()
        low, high = _delivery(value=1), _delivery(value=2)
        q.push(1.0, PRIORITY_DELIVERY, low, tiebreak=5)
        q.push(1.0, PRIORITY_DELIVERY, high, tiebreak=1)
        assert q.pop()[1] is high

    def test_peek_and_len(self):
        q = EventQueue()
        assert not q
        assert q.peek_time() is None
        q.push(3.0, PRIORITY_DELIVERY, _delivery())
        assert len(q) == 1
        assert q.peek_time() == 3.0


class TestPolicies:
    def test_prefer_sender(self):
        policy = prefer_sender(3)
        assert policy(3, 0, Propose(1)) < policy(2, 0, Propose(1))

    def test_prefer_value_order_descending(self):
        policy = prefer_value_order(descending=True)
        assert policy(0, 1, Propose(9)) < policy(0, 1, Propose(2))

    def test_prefer_value_order_ascending(self):
        policy = prefer_value_order(descending=False)
        assert policy(0, 1, Propose(2)) < policy(0, 1, Propose(9))

    def test_prefer_value_order_handles_missing_value(self):
        policy = prefer_value_order()
        from repro.protocols.twostep import OneA

        assert policy(0, 1, OneA(4)) > policy(0, 1, Propose(1))
