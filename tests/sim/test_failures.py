"""Tests for crash plans."""

import pytest

from repro.core import ConfigurationError
from repro.sim import CrashPlan


class TestConstruction:
    def test_none(self):
        assert len(CrashPlan.none()) == 0

    def test_at_start(self):
        plan = CrashPlan.at_start([1, 3])
        assert plan.crash_times == {1: 0.0, 3: 0.0}

    def test_at_time(self):
        plan = CrashPlan.at(2.5, [0])
        assert plan.crash_times == {0: 2.5}

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            CrashPlan({0: -1.0})


class TestMerge:
    def test_union(self):
        merged = CrashPlan.at_start([0]).merged_with(CrashPlan.at(3.0, [1]))
        assert merged.crash_times == {0: 0.0, 1: 3.0}

    def test_earlier_time_wins(self):
        merged = CrashPlan.at(5.0, [0]).merged_with(CrashPlan.at(2.0, [0]))
        assert merged.crash_times == {0: 2.0}


class TestValidation:
    def test_unknown_pid(self):
        with pytest.raises(ConfigurationError, match="pid 7"):
            CrashPlan.at_start([7]).validate_for(3)

    def test_budget(self):
        plan = CrashPlan.at_start([0, 1])
        plan.validate_for(5)  # no budget: fine
        plan.validate_for(5, f=2)
        with pytest.raises(ConfigurationError, match="budget"):
            plan.validate_for(5, f=1)

    def test_repr_sorted(self):
        assert repr(CrashPlan({2: 1.0, 0: 0.0})) == "CrashPlan(p0@0.0, p2@1.0)"
