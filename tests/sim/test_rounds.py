"""Tests that synchronous_run realizes Definition 2 exactly."""

import pytest

from repro.core import DeliverRecord, SendRecord
from repro.omega import lowest_correct_omega_factory
from repro.protocols import twostep_task_factory
from repro.sim import exists_two_step_run, synchronous_run, two_step_deciders


def _factory(n, f=2, e=2, faulty=frozenset(), proposals=None, delta=1.0):
    proposals = proposals or {pid: 100 + pid for pid in range(n)}
    return (
        twostep_task_factory(
            proposals,
            f,
            e,
            delta=delta,
            omega_factory=lowest_correct_omega_factory(set(faulty)),
        ),
        proposals,
    )


class TestRoundStructure:
    def test_messages_take_exactly_one_round(self):
        factory, proposals = _factory(6)
        run = synchronous_run(factory, 6, proposals=proposals, horizon_rounds=5)
        sends = {(r.sender, r.receiver, r.message): r.time for r in run.sends()}
        for record in run.deliveries():
            key = (record.sender, record.receiver, record.message)
            if key in sends:
                assert record.time == pytest.approx(sends[key] + 1.0)

    def test_custom_delta_scales_rounds(self):
        factory, proposals = _factory(6, delta=10.0)
        run = synchronous_run(
            factory, 6, proposals=proposals, delta=10.0, prefer=5, horizon_rounds=5
        )
        assert run.decision_time(5) == 20.0  # two steps of Δ=10

    def test_faulty_take_no_steps(self):
        factory, proposals = _factory(6, faulty={0, 1})
        run = synchronous_run(factory, 6, faulty={0, 1}, proposals=proposals)
        assert all(r.sender not in {0, 1} for r in run.sends())
        assert all(r.receiver not in {0, 1} for r in run.deliveries())
        assert run.crashed == {0, 1}

    def test_crash_budget_check(self):
        factory, proposals = _factory(6)
        with pytest.raises(Exception):
            synchronous_run(factory, 6, faulty={0, 1, 2}, f=2, proposals=proposals)

    def test_prefer_and_policy_mutually_exclusive(self):
        factory, proposals = _factory(6)
        with pytest.raises(ValueError):
            synchronous_run(
                factory,
                6,
                prefer=0,
                delivery_priority=lambda s, r, m: 0,
                proposals=proposals,
            )


class TestPreferencePolicy:
    def test_preferred_max_proposer_decides_two_step(self):
        factory, proposals = _factory(6, faulty={0, 1})
        run = synchronous_run(
            factory, 6, faulty={0, 1}, prefer=5, proposals=proposals
        )
        assert 5 in two_step_deciders(run, 1.0)

    def test_preferring_low_proposer_does_not_make_it_fast(self):
        # A low-value proposer cannot gather fast votes: higher proposers
        # reject its value (line 11), so no two-step decision for it.
        factory, proposals = _factory(6)
        run = synchronous_run(factory, 6, prefer=0, proposals=proposals)
        assert 0 not in two_step_deciders(run, 1.0)


class TestExistentialSearch:
    def test_finds_witness_for_some_process(self):
        factory, proposals = _factory(6, faulty={2, 3})
        run = exists_two_step_run(factory, 6, {2, 3}, proposals=proposals)
        assert run is not None
        assert two_step_deciders(run, 1.0)

    def test_finds_witness_for_target_with_same_values(self):
        proposals = {pid: 7 for pid in range(6)}
        factory, _ = _factory(6, faulty={0, 1}, proposals=proposals)
        for target in (2, 3, 4, 5):
            run = exists_two_step_run(
                factory, 6, {0, 1}, target=target, proposals=proposals
            )
            assert run is not None, f"no witness for {target}"

    def test_no_witness_for_crashed_target(self):
        factory, proposals = _factory(6, faulty={0, 1})
        run = exists_two_step_run(factory, 6, {0, 1}, target=0, proposals=proposals)
        assert run is None
