"""Tests for the adversarial arena."""

from dataclasses import dataclass

import pytest

from repro.core import Context, Message, Process, SchedulerError
from repro.sim import Arena


@dataclass(frozen=True)
class Token(Message):
    generation: int


class Relay(Process):
    """Broadcasts a token at start; re-broadcasts bumped tokens; decides
    on generation 2."""

    def on_start(self, ctx: Context) -> None:
        ctx.set_timer("tick", 1.0)
        ctx.broadcast(Token(0))

    def on_message(self, ctx: Context, sender, message: Token) -> None:
        if message.generation >= 2:
            ctx.decide(message.generation)
            return
        ctx.send(sender, Token(message.generation + 1))

    def on_timer(self, ctx: Context, name: str) -> None:
        ctx.decide("timeout")


def make_arena(n=3):
    return Arena(lambda pid, n_: Relay(pid, n_), n)


class TestStarting:
    def test_start_produces_pending_messages(self):
        arena = make_arena()
        arena.start(0)
        assert len(arena.pending_messages()) == 2

    def test_double_start_rejected(self):
        arena = make_arena()
        arena.start(0)
        with pytest.raises(SchedulerError):
            arena.start(0)

    def test_start_all_skips(self):
        arena = make_arena()
        arena.start_all(skip=[1])
        assert arena.started == {0, 2}


class TestDelivery:
    def test_deliver_runs_handler(self):
        arena = make_arena()
        arena.start(0)
        pm = arena.pending_messages(receiver=1)[0]
        arena.deliver(pm)
        # receiver 1 replied with generation 1 token to 0
        replies = arena.pending_messages(receiver=0)
        assert [m.message.generation for m in replies] == [1]

    def test_deliver_twice_rejected(self):
        arena = make_arena()
        arena.start(0)
        pm = arena.pending_messages()[0]
        arena.deliver(pm)
        with pytest.raises(SchedulerError, match="not pending"):
            arena.deliver(pm)

    def test_deliver_where_filters(self):
        arena = make_arena()
        arena.start_all()
        count = arena.deliver_where(receiver=1, kind=Token)
        assert count == 2  # from 0 and 2

    def test_deliver_round_is_one_network_step(self):
        arena = make_arena()
        arena.start_all()
        in_flight = len(arena.pending_messages())
        delivered = arena.deliver_round()
        assert delivered == in_flight
        # replies generated during the round are pending, not delivered
        assert arena.pending_messages()

    def test_inject_external_message(self):
        arena = make_arena()
        arena.start_all()
        uid = arena.inject(0, Token(2))
        arena.deliver(arena.pending[uid])
        assert arena.has_decided(0)
        assert arena.decided_value(0) == 2


class TestCrashes:
    def test_crashed_process_cannot_act(self):
        arena = make_arena()
        arena.start(0)
        arena.crash(1)
        with pytest.raises(SchedulerError, match="crashed"):
            arena.start(1)

    def test_messages_to_crashed_discarded(self):
        arena = make_arena()
        arena.start(0)
        assert arena.pending_messages(receiver=1)
        arena.crash(1)
        assert not arena.pending_messages(receiver=1)

    def test_messages_from_crashed_stay_deliverable(self):
        arena = make_arena()
        arena.start(0)
        arena.crash(0)
        survivors = arena.pending_messages(receiver=2, sender=0)
        assert survivors  # reliable links: already-sent messages survive
        arena.deliver(survivors[0])

    def test_new_sends_to_crashed_are_dropped(self):
        arena = make_arena()
        arena.start_all()
        arena.crash(0)
        arena.deliver_round()
        assert not arena.pending_messages(receiver=0)

    def test_crash_idempotent(self):
        arena = make_arena()
        arena.crash(1)
        arena.crash(1)
        assert len([r for r in arena.run_record.records]) == 1


class TestTimers:
    def test_timers_listed_soonest_first(self):
        arena = make_arena()
        arena.start_all()
        timers = arena.timers()
        assert len(timers) == 3
        assert timers[0][2] <= timers[-1][2]

    def test_fire_timer_advances_clock(self):
        arena = make_arena()
        arena.start(0)
        arena.fire_timer(0, "tick")
        assert arena.time == 1.0
        assert arena.decided_value(0) == "timeout"

    def test_fire_unarmed_timer_rejected(self):
        arena = make_arena()
        arena.start(0)
        arena.fire_timer(0, "tick")
        with pytest.raises(SchedulerError, match="no timer"):
            arena.fire_timer(0, "tick")

    def test_clock_cannot_rewind(self):
        arena = make_arena()
        arena.advance_to(5.0)
        with pytest.raises(SchedulerError):
            arena.advance_to(1.0)


class TestSettle:
    def test_settle_reaches_decisions(self):
        arena = make_arena()
        arena.start_all()
        run = arena.settle()
        assert all(arena.has_decided(pid) for pid in range(3))

    def test_settle_ignores_crashed_targets(self):
        arena = make_arena()
        arena.start_all()
        arena.crash(2)
        arena.settle()
        assert arena.has_decided(0) and arena.has_decided(1)
