"""The simulator's ``ctx.obs`` instrumentation: counters and stats view.

These tests pin the counter symmetry contract shared with the live
runtime (``src/repro/net/node.py``): every ``_send`` — including
self-sends — increments ``sent.<Type>``, every delivery increments
``recv.<Type>``, timers count set/fired/cancel, and ``Simulation.stats()``
returns the same ``{"nodes", "merged", "decisions", "fast_path_ratio"}``
shape ``scrape_cluster`` produces for a live cluster.
"""

from repro.core.process import Context
from repro.obs import NULL_OBS, fast_path_ratio
from repro.omega import static_omega_factory
from repro.protocols import twostep_task_factory
from repro.sim import FixedLatency, Simulation, prefer_sender, two_step_deciders


def _favourable_simulation(n=6, f=2, e=2, until=12.0):
    proposals = {pid: 100 + pid for pid in range(n)}
    sim = Simulation(
        twostep_task_factory(proposals, f, e, omega_factory=static_omega_factory(0)),
        n,
        latency=FixedLatency(1.0),
        delivery_priority=prefer_sender(n - 1),
        proposals=proposals,
    )
    sim.run(until=until)
    return sim


class TestSimulationCounters:
    def test_sends_and_receives_balance(self):
        sim = _favourable_simulation()
        n = sim.n
        totals = {"sent": 0, "recv": 0}
        for pid in range(n):
            counters = sim.node_snapshot(pid)["counters"]
            for name, value in counters.items():
                if name.startswith("sent."):
                    totals["sent"] += value
                elif name.startswith("recv."):
                    totals["recv"] += value
        # FixedLatency delivers everything well before the horizon and
        # nobody crashes, so every sent message was received.
        assert totals["sent"] > 0
        assert totals["sent"] == totals["recv"]

    def test_timer_counters_present(self):
        sim = _favourable_simulation()
        merged = sim.stats()["merged"]["counters"]
        assert merged.get("timer.set", 0) > 0
        # Deciders cancel their ballot timers.
        assert merged.get("timer.cancel", 0) > 0

    def test_per_message_type_labels(self):
        sim = _favourable_simulation()
        merged = sim.stats()["merged"]["counters"]
        labels = {name.split(".", 1)[1] for name in merged if name.startswith("sent.")}
        # The favourable two-step schedule exchanges at least proposals
        # and ballot-0 votes.
        assert any("TwoB" in label for label in labels), labels

    def test_favourable_schedule_is_all_fast(self):
        sim = _favourable_simulation()
        deciders = two_step_deciders(sim.run_record, delta=1.0)
        assert deciders
        stats = sim.stats()
        assert set(stats) == {"nodes", "merged", "decisions", "fast_path_ratio"}
        assert fast_path_ratio(stats["merged"]) == 1.0
        merged_counters = stats["merged"]["counters"]
        fast = merged_counters["consensus.decisions_fast"]
        learned = merged_counters.get("consensus.decisions_learned", 0)
        decided = sum(
            1 for pid in range(sim.n) if sim.run_record.decision_time(pid) is not None
        )
        assert fast + learned == decided


class TestObsSeam:
    def test_uninstrumented_context_defaults_to_null_obs(self):
        class BareContext(Context):
            @property
            def pid(self):
                return 0

            @property
            def n(self):
                return 1

            @property
            def now(self):
                return 0.0

            def send(self, to, message):
                pass

            def broadcast(self, message, include_self=False):
                pass

            def set_timer(self, name, delay):
                pass

            def cancel_timer(self, name):
                pass

            def decide(self, value):
                pass

        ctx = BareContext()
        assert ctx.obs is NULL_OBS
        # Writing through the null obs must be a silent no-op.
        ctx.obs.registry.inc("anything")
        assert ctx.obs.registry.snapshot()["counters"] == {}

    def test_simulation_contexts_are_per_node(self):
        sim = _favourable_simulation(until=2.5)
        assert len({id(obs.registry) for obs in sim.obs}) == sim.n
        assert all(obs.node == pid for pid, obs in enumerate(sim.obs))
