"""Pin the simulator's timer semantics.

These are the exact semantics :class:`repro.net.node.NodeServer` must
reproduce over ``loop.call_later`` (see ``tests/net/test_node_timers.py``,
which mirrors every case here against the live runtime):

* ``set_timer`` on a pending timer **re-arms** it — the old deadline is
  replaced, the timer fires exactly once, at the new deadline;
* ``cancel_timer`` of a pending timer suppresses the fire;
* ``cancel_timer`` of an absent timer is a no-op;
* timers with different names are independent;
* re-arming from inside ``on_timer`` builds periodic timers;
* negative delays are a :class:`~repro.core.errors.SchedulerError`;
* the default ``Process.on_timer`` ignores fires.
"""

from dataclasses import dataclass
from typing import List, Tuple

import pytest

from repro.core.errors import SchedulerError
from repro.core.process import ClientRequest, Context, Process, ProcessId
from repro.core.runs import TimerFiredRecord
from repro.sim.simulation import Simulation


@dataclass(frozen=True)
class Poke(ClientRequest):
    """Test-only injection telling the probe to drive its timer API."""

    action: str  # "set" | "cancel"
    name: str = "t"
    delay: float = 0.0


class TimerProbe(Process):
    """Records every timer fire as ``(time, name)``; optionally periodic."""

    def __init__(self, pid: ProcessId, n: int, period: float = 0.0, limit: int = 0):
        super().__init__(pid, n)
        self.period = period
        self.limit = limit
        self.fired: List[Tuple[float, str]] = []

    def on_start(self, ctx: Context) -> None:
        if self.period > 0:
            ctx.set_timer("tick", self.period)

    def on_message(self, ctx: Context, sender: ProcessId, message) -> None:
        assert isinstance(message, Poke)
        if message.action == "set":
            ctx.set_timer(message.name, message.delay)
        elif message.action == "cancel":
            ctx.cancel_timer(message.name)
        else:  # pragma: no cover
            raise AssertionError(message.action)

    def on_timer(self, ctx: Context, name: str) -> None:
        self.fired.append((ctx.now, name))
        if self.period > 0 and len(self.fired) < self.limit:
            ctx.set_timer(name, self.period)


def _run(pokes, until=100.0, **probe_kwargs):
    simulation = Simulation(
        lambda pid, n: TimerProbe(pid, n, **probe_kwargs), n=1
    )
    for time, poke in pokes:
        simulation.inject(time, 0, poke)
    run = simulation.run(until=until)
    probe: TimerProbe = simulation.processes[0]  # type: ignore[assignment]
    return probe, run


class TestSetTimer:
    def test_single_set_fires_once_at_deadline(self):
        probe, run = _run([(1.0, Poke("set", delay=4.0))])
        assert probe.fired == [(5.0, "t")]
        assert len(run.of_kind(TimerFiredRecord)) == 1

    def test_rearm_replaces_deadline(self):
        # Armed for t=11, re-armed at t=5 for t=15: one fire, at 15.
        probe, _ = _run(
            [(1.0, Poke("set", delay=10.0)), (5.0, Poke("set", delay=10.0))]
        )
        assert probe.fired == [(15.0, "t")]

    def test_rearm_shorter_fires_earlier(self):
        # Armed for t=10, re-armed at t=1 for t=3: the earlier deadline wins.
        probe, _ = _run(
            [(0.0, Poke("set", delay=10.0)), (1.0, Poke("set", delay=2.0))]
        )
        assert probe.fired == [(3.0, "t")]

    def test_zero_delay_fires_at_now(self):
        probe, _ = _run([(2.0, Poke("set", delay=0.0))])
        assert probe.fired == [(2.0, "t")]

    def test_negative_delay_rejected(self):
        simulation = Simulation(lambda pid, n: TimerProbe(pid, n), n=1)
        simulation.inject(0.0, 0, Poke("set", delay=-1.0))
        with pytest.raises(SchedulerError):
            simulation.run(until=10.0)


class TestCancelTimer:
    def test_cancel_pending_suppresses_fire(self):
        probe, run = _run(
            [(0.0, Poke("set", delay=5.0)), (2.0, Poke("cancel"))]
        )
        assert probe.fired == []
        assert run.of_kind(TimerFiredRecord) == []

    def test_cancel_absent_is_noop(self):
        probe, _ = _run([(0.0, Poke("cancel", name="never-set"))])
        assert probe.fired == []

    def test_cancel_then_set_rearms(self):
        probe, _ = _run(
            [
                (0.0, Poke("set", delay=5.0)),
                (1.0, Poke("cancel")),
                (2.0, Poke("set", delay=2.0)),
            ]
        )
        assert probe.fired == [(4.0, "t")]

    def test_timers_are_independent_by_name(self):
        probe, _ = _run(
            [
                (0.0, Poke("set", name="a", delay=3.0)),
                (0.0, Poke("set", name="b", delay=5.0)),
                (1.0, Poke("cancel", name="a")),
            ]
        )
        assert probe.fired == [(5.0, "b")]


class TestPeriodicAndDefaults:
    def test_rearm_inside_on_timer_is_periodic(self):
        probe, _ = _run([], until=10.0, period=1.0, limit=3)
        assert probe.fired == [(1.0, "tick"), (2.0, "tick"), (3.0, "tick")]

    def test_default_on_timer_is_a_noop(self):
        class Silent(Process):
            def on_start(self, ctx: Context) -> None:
                ctx.set_timer("quiet", 1.0)

            def on_message(self, ctx, sender, message) -> None:  # pragma: no cover
                pass

        simulation = Simulation(lambda pid, n: Silent(pid, n), n=1)
        run = simulation.run(until=5.0)
        fired = run.of_kind(TimerFiredRecord)
        assert [record.name for record in fired] == ["quiet"]
