"""Tests for the latency models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ConfigurationError
from repro.sim.latency import (
    FixedLatency,
    PartialSynchrony,
    RandomLatency,
    WanMatrix,
)


class TestFixedLatency:
    def test_exact_delta(self):
        model = FixedLatency(2.5)
        assert model.delivery_time(0, 1, 10.0) == 12.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            FixedLatency(0)


class TestRandomLatency:
    def test_within_band(self):
        model = RandomLatency(1.0, 3.0, seed=1)
        for _ in range(100):
            d = model.delivery_time(0, 1, 0.0)
            assert 1.0 <= d <= 3.0

    def test_deterministic_per_seed(self):
        a = [RandomLatency(1, 2, seed=7).delivery_time(0, 1, 0.0) for _ in range(1)]
        b = [RandomLatency(1, 2, seed=7).delivery_time(0, 1, 0.0) for _ in range(1)]
        assert a == b

    def test_rejects_bad_band(self):
        with pytest.raises(ConfigurationError):
            RandomLatency(3, 1)
        with pytest.raises(ConfigurationError):
            RandomLatency(0, 1)


class TestPartialSynchrony:
    def test_post_gst_bounded_by_delta(self):
        model = PartialSynchrony(delta=1.0, gst=5.0, seed=3)
        for _ in range(200):
            d = model.delivery_time(0, 1, 6.0)
            assert 6.0 < d <= 7.0

    def test_pre_gst_message_arrives_by_gst_plus_delta(self):
        model = PartialSynchrony(delta=1.0, gst=5.0, pre_gst_max=100.0, seed=3)
        for _ in range(200):
            d = model.delivery_time(0, 1, 0.5)
            assert d <= 6.0  # max(send, gst) + delta

    def test_pre_gst_at_least_delta(self):
        model = PartialSynchrony(delta=1.0, gst=50.0, seed=3)
        for _ in range(100):
            assert model.delivery_time(0, 1, 0.0) >= 1.0

    def test_rejects_pre_gst_below_delta(self):
        with pytest.raises(ConfigurationError):
            PartialSynchrony(delta=2.0, pre_gst_max=1.0)

    @given(st.floats(min_value=0, max_value=100))
    def test_never_delivers_before_send(self, send_time):
        model = PartialSynchrony(delta=1.0, gst=10.0, seed=1)
        assert model.delivery_time(0, 1, send_time) >= send_time


class TestWanMatrix:
    MATRIX = [
        [0.5, 30.0, 80.0],
        [30.0, 0.5, 60.0],
        [80.0, 60.0, 0.5],
    ]

    def test_uses_matrix_entries(self):
        model = WanMatrix(self.MATRIX)
        assert model.delivery_time(0, 1, 0.0) == 30.0
        assert model.delivery_time(2, 0, 5.0) == 85.0

    def test_placement_maps_processes_to_sites(self):
        model = WanMatrix(self.MATRIX, placement=[0, 0, 1, 2])
        assert model.delivery_time(0, 1, 0.0) == 0.5  # same site
        assert model.delivery_time(1, 2, 0.0) == 30.0

    def test_zero_delay_gets_floor(self):
        model = WanMatrix([[0.0]])
        assert model.delivery_time(0, 0, 0.0) > 0.0

    def test_jitter_bounded(self):
        model = WanMatrix(self.MATRIX, jitter=0.1, seed=2)
        for _ in range(100):
            d = model.delivery_time(0, 1, 0.0)
            assert 30.0 <= d <= 33.0

    def test_max_delay(self):
        assert WanMatrix(self.MATRIX).max_delay() == 80.0
        assert WanMatrix(self.MATRIX, jitter=0.5).max_delay() == 120.0

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            WanMatrix([[1.0, 2.0]])

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            WanMatrix([[-1.0]])

    def test_rejects_bad_placement(self):
        with pytest.raises(ConfigurationError):
            WanMatrix(self.MATRIX, placement=[0, 5])
