"""Tests for the discrete-event simulator: determinism, timers, crashes."""

from dataclasses import dataclass

import pytest

from repro.core import (
    BOTTOM,
    ConfigurationError,
    Context,
    DeliverRecord,
    Message,
    Process,
    SchedulerError,
    TimerFiredRecord,
)
from repro.sim import CrashPlan, FixedLatency, RandomLatency, Simulation


@dataclass(frozen=True)
class Ping(Message):
    hop: int


class Echo(Process):
    """Bounces pings with an incrementing hop count, decides at hop 3."""

    def on_start(self, ctx: Context) -> None:
        if self.pid == 0:
            ctx.broadcast(Ping(0))

    def on_message(self, ctx: Context, sender, message: Message) -> None:
        if message.hop >= 3:
            ctx.decide(message.hop)
            return
        ctx.send(sender, Ping(message.hop + 1))


class TimerUser(Process):
    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.fired = []

    def on_start(self, ctx: Context) -> None:
        ctx.set_timer("a", 1.0)
        ctx.set_timer("b", 2.0)
        ctx.set_timer("a", 5.0)  # re-arm replaces the 1.0 deadline

    def on_message(self, ctx: Context, sender, message: Message) -> None:
        pass

    def on_timer(self, ctx: Context, name: str) -> None:
        self.fired.append((ctx.now, name))
        if name == "b":
            ctx.cancel_timer("a")


class TestBasicExecution:
    def test_ping_pong_terminates(self):
        sim = Simulation(lambda pid, n: Echo(pid, n), 3, latency=FixedLatency(1.0))
        run = sim.run()
        # hops: 0 sent at t=0, replies at 1, 2, 3; hop 3 delivered at t=4.
        assert run.decided_values() == {3}

    def test_rejects_zero_processes(self):
        with pytest.raises(ConfigurationError):
            Simulation(lambda pid, n: Echo(pid, n), 0)

    def test_until_cuts_off(self):
        sim = Simulation(lambda pid, n: Echo(pid, n), 3, latency=FixedLatency(1.0))
        run = sim.run(until=2.0)
        assert run.decided_values() == set()
        assert sim.time == 2.0

    def test_stop_condition(self):
        sim = Simulation(lambda pid, n: Echo(pid, n), 3, latency=FixedLatency(1.0))
        run = sim.run(stop=lambda r: bool(r.decisions))
        assert len(run.decisions) >= 1

    def test_max_events_guard(self):
        class Chatty(Process):
            def on_start(self, ctx):
                ctx.send(self.pid, Ping(0))

            def on_message(self, ctx, sender, message):
                ctx.send(self.pid, Ping(0))

        sim = Simulation(lambda pid, n: Chatty(pid, n), 1, latency=FixedLatency(1.0))
        with pytest.raises(SchedulerError, match="exceeded"):
            sim.run(max_events=100)


class TestDeterminism:
    def _trace(self, seed):
        sim = Simulation(
            lambda pid, n: Echo(pid, n), 4, latency=RandomLatency(0.5, 2.0, seed=seed)
        )
        run = sim.run()
        return [(r.time, type(r).__name__) for r in run.records]

    def test_same_seed_same_trace(self):
        assert self._trace(42) == self._trace(42)

    def test_different_seed_different_trace(self):
        assert self._trace(1) != self._trace(2)


class TestTimers:
    def test_rearm_replaces_deadline(self):
        sim = Simulation(lambda pid, n: TimerUser(pid, n), 1)
        sim.run()
        process = sim.processes[0]
        # 'b' fires at 2.0 and cancels 'a' (re-armed to 5.0), so only 'b'.
        assert process.fired == [(2.0, "b")]

    def test_timer_fired_records(self):
        sim = Simulation(lambda pid, n: TimerUser(pid, n), 1)
        run = sim.run()
        fired = run.of_kind(TimerFiredRecord)
        assert [(r.time, r.name) for r in fired] == [(2.0, "b")]

    def test_negative_delay_rejected(self):
        class Bad(Process):
            def on_start(self, ctx):
                ctx.set_timer("x", -1.0)

            def on_message(self, ctx, sender, message):
                pass

        sim = Simulation(lambda pid, n: Bad(pid, n), 1)
        with pytest.raises(SchedulerError):
            sim.run()


class TestCrashes:
    def test_crash_at_start_suppresses_everything(self):
        sim = Simulation(
            lambda pid, n: Echo(pid, n),
            3,
            latency=FixedLatency(1.0),
            crashes=CrashPlan.at_start([0]),
        )
        run = sim.run()
        # Process 0 never starts, so no pings at all.
        assert run.message_count() == 0
        assert run.crashed == {0}

    def test_mid_run_crash_drops_later_deliveries(self):
        sim = Simulation(
            lambda pid, n: Echo(pid, n),
            2,
            latency=FixedLatency(1.0),
            crashes=CrashPlan.at(1.5, [1]),
        )
        run = sim.run()
        # p1 received hop 0 at t=1 and replied; it crashed at 1.5, so the
        # hop-2 ping addressed to it at t=3 is dropped silently.
        deliveries_to_1 = [r for r in run.deliveries() if r.receiver == 1]
        assert len(deliveries_to_1) == 1

    def test_crash_budget_enforced(self):
        with pytest.raises(ConfigurationError, match="budget"):
            Simulation(
                lambda pid, n: Echo(pid, n),
                3,
                crashes=CrashPlan.at_start([0, 1]),
                f=1,
            )

    def test_crash_plan_unknown_pid(self):
        with pytest.raises(ConfigurationError):
            Simulation(lambda pid, n: Echo(pid, n), 2, crashes=CrashPlan.at_start([5]))


class TestInjection:
    def test_injected_message_delivered(self):
        sim = Simulation(lambda pid, n: Echo(pid, n), 2, latency=FixedLatency(1.0))
        sim.inject(0.5, 1, Ping(3))
        run = sim.run()
        assert run.decision_time(1) == 0.5

    def test_injection_into_past_rejected(self):
        sim = Simulation(lambda pid, n: Echo(pid, n), 2, latency=FixedLatency(1.0))
        sim.run(until=5.0)
        with pytest.raises(SchedulerError):
            sim.inject(1.0, 0, Ping(0))

    def test_run_until_all_decide(self):
        sim = Simulation(lambda pid, n: Echo(pid, n), 2, latency=FixedLatency(1.0))
        sim.inject(0.0, 0, Ping(3))
        sim.inject(0.0, 1, Ping(3))
        run = sim.run_until_all_decide()
        assert set(run.decisions) == {0, 1}


class TestStopConditionClock:
    """`run(stop=...)` must not fast-forward the clock to `until`.

    Before the fix an early `stop` exit still jumped `self.time` to
    `until`, so anything injected afterwards was stamped relative to the
    horizon instead of the stop point.
    """

    def _sim(self):
        return Simulation(lambda pid, n: Echo(pid, n), n=3, latency=FixedLatency(1.0))

    def test_stop_exit_keeps_event_time(self):
        sim = self._sim()
        run = sim.run(until=100.0, stop=lambda r: bool(r.decisions))
        assert run.decisions, "Echo should decide within the horizon"
        first_decision = min(rec.time for rec in run.decisions.values())
        assert sim.time == pytest.approx(first_decision)
        assert sim.time < 100.0

    def test_injection_after_stop_is_stamped_at_stop_point(self):
        sim = self._sim()
        sim.run(until=100.0, stop=lambda r: bool(r.decisions))
        stop_time = sim.time
        # Before the fix this raised / mis-stamped: the clock sat at 100.
        sim.inject(stop_time + 1.0, 0, Ping(0))
        assert sim.time == pytest.approx(stop_time)

    def test_exhausted_queue_still_fast_forwards(self):
        sim = self._sim()
        sim.run(until=100.0)  # no stop condition: horizon semantics intact
        assert sim.time == pytest.approx(100.0)
