"""Tests for the consensus specification checkers."""

import pytest

from repro.core import (
    BOTTOM,
    CrashRecord,
    DecideRecord,
    Run,
    SpecViolationError,
    check_agreement,
    check_consensus,
    check_termination,
    check_validity,
    decided_value_or_none,
    require_agreement,
    require_consensus,
)


def _run(n=3, proposals=None, decisions=(), crashes=()):
    run = Run(n, proposals or {pid: pid + 10 for pid in range(n)})
    for pid in crashes:
        run.add(CrashRecord(time=0.0, pid=pid))
    for time, pid, value in decisions:
        run.add(DecideRecord(time=time, pid=pid, value=value))
    return run


class TestValidity:
    def test_valid_decision_passes(self):
        run = _run(decisions=[(2.0, 0, 10)])
        assert check_validity(run) == []

    def test_unproposed_value_flagged(self):
        run = _run(decisions=[(2.0, 0, 999)])
        violations = check_validity(run)
        assert len(violations) == 1
        assert "999" in violations[0].description

    def test_bottom_decision_flagged(self):
        run = _run(decisions=[(2.0, 0, BOTTOM)])
        assert check_validity(run)

    def test_object_style_partial_proposals(self):
        run = _run(proposals={1: "v"}, decisions=[(2.0, 0, "v")])
        assert check_validity(run) == []


class TestAgreement:
    def test_single_value_passes(self):
        run = _run(decisions=[(2.0, 0, 10), (3.0, 1, 10)])
        assert check_agreement(run) == []

    def test_no_decisions_pass(self):
        assert check_agreement(_run()) == []

    def test_two_values_flagged(self):
        run = _run(decisions=[(2.0, 0, 10), (3.0, 1, 11)])
        violations = check_agreement(run)
        assert len(violations) == 1
        assert "distinct decisions" in violations[0].description

    def test_require_agreement_raises(self):
        run = _run(decisions=[(2.0, 0, 10), (3.0, 1, 11)])
        with pytest.raises(SpecViolationError):
            require_agreement(run)


class TestTermination:
    def test_all_correct_decided_passes(self):
        run = _run(decisions=[(2.0, 0, 10), (2.0, 1, 10), (2.0, 2, 10)])
        assert check_termination(run) == []

    def test_crashed_processes_exempt(self):
        run = _run(decisions=[(2.0, 0, 10), (2.0, 1, 10)], crashes=[2])
        assert check_termination(run) == []

    def test_missing_correct_process_flagged(self):
        run = _run(decisions=[(2.0, 0, 10)])
        violations = check_termination(run)
        assert len(violations) == 1
        assert "[1, 2]" in violations[0].description

    def test_explicit_expected_set(self):
        run = _run(decisions=[(2.0, 0, 10)])
        assert check_termination(run, expected=[0]) == []
        assert check_termination(run, expected=[0, 1])


class TestCombined:
    def test_check_consensus_aggregates(self):
        run = _run(decisions=[(2.0, 0, 999), (3.0, 1, 10)])
        kinds = {v.property_name for v in check_consensus(run)}
        assert kinds == {"validity", "agreement", "termination"}

    def test_require_consensus_raises_with_details(self):
        run = _run(decisions=[(2.0, 0, 999)])
        with pytest.raises(SpecViolationError, match="validity"):
            require_consensus(run)

    def test_require_consensus_green(self):
        run = _run(decisions=[(2.0, 0, 10), (2.0, 1, 10), (2.0, 2, 10)])
        require_consensus(run)


class TestDecidedValue:
    def test_none_when_undecided(self):
        assert decided_value_or_none(_run()) is None

    def test_unique_value(self):
        run = _run(decisions=[(2.0, 0, 10)])
        assert decided_value_or_none(run) == 10

    def test_raises_on_disagreement(self):
        run = _run(decisions=[(2.0, 0, 10), (3.0, 1, 11)])
        with pytest.raises(SpecViolationError):
            decided_value_or_none(run)
