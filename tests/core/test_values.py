"""Tests for the BOTTOM sentinel and value utilities."""

import copy
import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.values import (
    BOTTOM,
    _Bottom,
    is_bottom,
    max_value,
    require_comparable,
)


class TestBottomSingleton:
    def test_constructor_returns_singleton(self):
        assert _Bottom() is BOTTOM

    def test_copy_preserves_identity(self):
        assert copy.copy(BOTTOM) is BOTTOM
        assert copy.deepcopy(BOTTOM) is BOTTOM

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM

    def test_repr(self):
        assert repr(BOTTOM) == "BOTTOM"

    def test_falsy(self):
        assert not BOTTOM

    def test_hashable_and_stable(self):
        assert hash(BOTTOM) == hash(_Bottom())


class TestBottomOrdering:
    @pytest.mark.parametrize("value", [0, -1, 1, "a", "", (1, 2), 3.5])
    def test_strictly_below_everything(self, value):
        assert BOTTOM < value
        assert BOTTOM <= value
        assert not BOTTOM > value
        assert not BOTTOM >= value

    @pytest.mark.parametrize("value", [0, -10, "z", ()])
    def test_reflected_comparisons(self, value):
        assert value > BOTTOM
        assert value >= BOTTOM
        assert not value < BOTTOM
        assert not value <= BOTTOM

    def test_equal_only_to_itself(self):
        assert BOTTOM == BOTTOM
        assert not BOTTOM != BOTTOM
        assert BOTTOM != 0
        assert BOTTOM != ""
        assert BOTTOM != None  # noqa: E711 - deliberate: BOTTOM is not None

    def test_not_less_than_itself(self):
        assert not BOTTOM < BOTTOM
        assert BOTTOM <= BOTTOM
        assert BOTTOM >= BOTTOM

    @given(st.integers())
    def test_total_order_with_integers(self, value):
        assert BOTTOM < value
        assert max_value([BOTTOM, value]) == value


class TestIsBottom:
    def test_positive(self):
        assert is_bottom(BOTTOM)

    @pytest.mark.parametrize("value", [0, None, False, "", []])
    def test_negative_for_other_falsy_values(self, value):
        assert not is_bottom(value)


class TestMaxValue:
    def test_empty_returns_bottom(self):
        assert max_value([]) is BOTTOM

    def test_all_bottom_returns_bottom(self):
        assert max_value([BOTTOM, BOTTOM]) is BOTTOM

    def test_picks_maximum(self):
        assert max_value([3, BOTTOM, 7, 5]) == 7

    @given(st.lists(st.integers(), min_size=1))
    def test_matches_builtin_max(self, values):
        assert max_value(values) == max(values)

    @given(st.lists(st.integers()))
    def test_bottom_padding_never_changes_result(self, values):
        padded = [BOTTOM] + values + [BOTTOM]
        assert max_value(padded) == (max(values) if values else BOTTOM)


class TestRequireComparable:
    def test_accepts_homogeneous(self):
        require_comparable([1, 2, 3, BOTTOM])

    def test_accepts_strings(self):
        require_comparable(["a", "b"])

    def test_rejects_mixed(self):
        with pytest.raises(TypeError, match="totally ordered"):
            require_comparable([1, "a"])

    def test_bottom_never_conflicts(self):
        require_comparable([BOTTOM])
        require_comparable([BOTTOM, 5])
