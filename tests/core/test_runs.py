"""Tests for run records: decisions, crashes, projections, views."""

import pytest

from repro.core import (
    BOTTOM,
    CrashRecord,
    DecideRecord,
    DeliverRecord,
    ProtocolError,
    Run,
    SendRecord,
    TimerSetRecord,
)
from repro.protocols.twostep import Propose


def _send(t, src, dst, value=1):
    return SendRecord(time=t, sender=src, receiver=dst, message=Propose(value))


def _recv(t, src, dst, value=1):
    return DeliverRecord(time=t, sender=src, receiver=dst, message=Propose(value))


class TestDecisions:
    def test_first_decision_recorded(self):
        run = Run(3)
        run.add(DecideRecord(time=2.0, pid=1, value="x"))
        assert run.decided_value(1) == "x"
        assert run.decision_time(1) == 2.0

    def test_undecided_process(self):
        run = Run(3)
        assert run.decided_value(0) is BOTTOM
        assert run.decision_time(0) is None

    def test_duplicate_same_value_is_ignored(self):
        run = Run(3)
        run.add(DecideRecord(time=2.0, pid=1, value="x"))
        run.add(DecideRecord(time=3.0, pid=1, value="x"))
        assert run.decision_time(1) == 2.0
        assert len(run.of_kind(DecideRecord)) == 1

    def test_conflicting_decision_raises(self):
        run = Run(3)
        run.add(DecideRecord(time=2.0, pid=1, value="x"))
        with pytest.raises(ProtocolError, match="decided"):
            run.add(DecideRecord(time=3.0, pid=1, value="y"))

    def test_decided_values_across_processes(self):
        run = Run(3)
        run.add(DecideRecord(time=1.0, pid=0, value="x"))
        run.add(DecideRecord(time=2.0, pid=1, value="y"))
        assert run.decided_values() == {"x", "y"}

    def test_deciders_by_deadline(self):
        run = Run(4)
        run.add(DecideRecord(time=2.0, pid=0, value="x"))
        run.add(DecideRecord(time=3.0, pid=1, value="x"))
        assert run.deciders_by(2.0) == {0}
        assert run.deciders_by(3.0) == {0, 1}

    def test_is_two_step_for(self):
        run = Run(4)
        run.add(DecideRecord(time=2.0, pid=0, value="x"))
        run.add(DecideRecord(time=2.5, pid=1, value="x"))
        assert run.is_two_step_for(0, delta=1.0)
        assert not run.is_two_step_for(1, delta=1.0)
        assert not run.is_two_step_for(2, delta=1.0)


class TestCrashes:
    def test_crash_tracking(self):
        run = Run(4)
        run.add(CrashRecord(time=0.0, pid=2))
        assert run.crashed == {2}
        assert run.correct == {0, 1, 3}


class TestProjections:
    def test_message_count_and_histogram(self):
        run = Run(3)
        run.add(_send(0.0, 0, 1))
        run.add(_send(0.0, 0, 2))
        run.add(_recv(1.0, 0, 1))
        assert run.message_count() == 2
        assert run.messages_by_kind() == {"Propose": 2}

    def test_steps_of_attribution(self):
        run = Run(3)
        run.add(_send(0.0, 0, 1))  # attributed to 0
        run.add(_recv(1.0, 0, 1))  # attributed to 1
        run.add(DecideRecord(time=2.0, pid=2, value=1))  # attributed to 2
        assert len(run.steps_of([0])) == 1
        assert len(run.steps_of([1])) == 1
        assert len(run.steps_of([0, 1, 2])) == 3


class TestViews:
    def _run_with(self, records):
        run = Run(3)
        for record in records:
            run.add(record)
        return run

    def test_identical_views(self):
        a = self._run_with([_send(0.0, 0, 1), _recv(1.0, 0, 1)])
        b = self._run_with([_send(5.0, 0, 1), _recv(9.0, 0, 1)])
        # Times differ but the normalized views must match: processes
        # cannot read a global clock.
        assert a.views_equal(b, [0, 1])

    def test_differing_views_detected(self):
        a = self._run_with([_send(0.0, 0, 1, value=1)])
        b = self._run_with([_send(0.0, 0, 1, value=2)])
        assert not a.views_equal(b, [0])
        assert a.views_equal(b, [1])  # process 1 saw nothing in either

    def test_timer_records_are_part_of_views(self):
        a = self._run_with([TimerSetRecord(time=0.0, pid=0, name="t", deadline=2.0)])
        b = self._run_with([])
        assert not a.views_equal(b, [0])

    def test_timer_deadline_not_compared(self):
        # Deadlines are absolute times; processes can't observe them.
        a = self._run_with([TimerSetRecord(time=0.0, pid=0, name="t", deadline=2.0)])
        b = self._run_with([TimerSetRecord(time=5.0, pid=0, name="t", deadline=7.0)])
        assert a.views_equal(b, [0])


class TestFormatting:
    def test_format_produces_one_line_per_record(self):
        run = Run(3)
        run.add(_send(0.0, 0, 1))
        run.add(DecideRecord(time=2.0, pid=0, value=1))
        assert len(run.format().splitlines()) == 2

    def test_format_limit(self):
        run = Run(3)
        for i in range(5):
            run.add(_send(float(i), 0, 1))
        text = run.format(limit=2)
        assert "3 more records" in text

    def test_repr_mentions_counts(self):
        run = Run(3)
        run.add(DecideRecord(time=1.0, pid=0, value=1))
        assert "decided=1" in repr(run)


class TestProposalRecording:
    def test_record_proposal(self):
        run = Run(3)
        run.record_proposal(1, "v", time=0.5)
        assert run.proposals[1] == "v"
        assert len(run.records) == 1
