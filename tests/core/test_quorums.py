"""Tests for quorum arithmetic, including the intersection properties the
protocols rely on."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ConfigurationError
from repro.core.quorums import (
    classic_quorum_size,
    classic_quorums_intersect,
    fast_classic_intersect_two,
    fast_quorum_size,
    fast_survivors_lower_bound,
    is_classic_quorum,
    is_fast_quorum,
    recovery_threshold,
    validate_resilience,
)

# (n, f, e) grids used across parametrized tests.
VALID_CONFIGS = [
    (3, 1, 0),
    (3, 1, 1),
    (5, 2, 1),
    (5, 2, 2),
    (6, 2, 2),
    (7, 2, 2),
    (7, 3, 2),
    (9, 3, 3),
    (11, 5, 3),
]


class TestValidation:
    @pytest.mark.parametrize("n,f,e", VALID_CONFIGS)
    def test_valid_configs_pass(self, n, f, e):
        validate_resilience(n, f, e)

    def test_rejects_too_few_processes(self):
        with pytest.raises(ConfigurationError, match="2f\\+1"):
            validate_resilience(4, 2, 0)

    def test_rejects_e_above_f(self):
        with pytest.raises(ConfigurationError, match="0 <= e <= f"):
            validate_resilience(7, 2, 3)

    def test_rejects_negative_f(self):
        with pytest.raises(ConfigurationError):
            validate_resilience(3, -1, 0)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ConfigurationError):
            validate_resilience(0, 0, 0)


class TestSizes:
    def test_classic_quorum(self):
        assert classic_quorum_size(5, 2) == 3

    def test_fast_quorum(self):
        assert fast_quorum_size(6, 2) == 4

    def test_recovery_threshold(self):
        assert recovery_threshold(6, 2, 2) == 2

    @pytest.mark.parametrize("n,f,e", VALID_CONFIGS)
    def test_survivor_bound_equals_threshold(self, n, f, e):
        assert fast_survivors_lower_bound(n, f, e) == recovery_threshold(n, f, e)


class TestIntersections:
    @given(st.integers(min_value=0, max_value=20))
    def test_classic_intersection_iff_2f_plus_1(self, f):
        assert classic_quorums_intersect(2 * f + 1, f)
        if f >= 1:
            assert not classic_quorums_intersect(2 * f, f)

    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
    )
    def test_fast_paxos_condition_iff_lamport_bound(self, f, e):
        bound = 2 * e + f + 1
        assert fast_classic_intersect_two(bound, f, e)
        if bound > 1:
            assert not fast_classic_intersect_two(bound - 1, f, e)

    @given(st.data())
    def test_concrete_intersection_matches_formula(self, data):
        """Set-level check: the arithmetic predicts actual intersections."""
        f = data.draw(st.integers(min_value=1, max_value=3))
        e = data.draw(st.integers(min_value=1, max_value=f))
        n = data.draw(st.integers(min_value=2 * f + 1, max_value=2 * e + f + 3))
        processes = list(range(n))
        # two worst-case (disjoint-as-possible) fast quorums + one classic
        fast_a = set(processes[: fast_quorum_size(n, e)])
        fast_b = set(processes[n - fast_quorum_size(n, e):])
        classic = set(processes[: classic_quorum_size(n, f)])
        nonempty = bool(fast_a & fast_b & classic)
        # The formula claims intersection for ALL choices; the worst case
        # above is the binding one for the suffix/prefix layout.
        if fast_classic_intersect_two(n, f, e):
            assert nonempty


class TestMembership:
    def test_is_classic_quorum(self):
        assert is_classic_quorum({0, 1, 2}, 5, 2)
        assert not is_classic_quorum({0, 1}, 5, 2)

    def test_is_fast_quorum(self):
        assert is_fast_quorum({0, 1, 2, 3}, 6, 2)
        assert not is_fast_quorum({0, 1, 2}, 6, 2)

    def test_rejects_out_of_range_pid(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            is_classic_quorum({0, 9}, 5, 2)
