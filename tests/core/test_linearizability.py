"""Tests for the consensus-object linearizability checker.

The closed-form criterion is cross-validated against the brute-force
enumerator on randomized histories — the classic pattern for trusting a
fast checker.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HistoryError
from repro.core.linearizability import (
    History,
    Operation,
    check_linearizable,
    is_linearizable,
    linearizable_bruteforce,
)


def op(pid, arg, invoke, response=None, result=None):
    return Operation(
        pid=pid, argument=arg, invoke_time=invoke, response_time=response, result=result
    )


class TestBasicCases:
    def test_empty_history(self):
        assert is_linearizable(History())

    def test_single_successful_propose(self):
        history = History([op(0, "a", 0.0, 2.0, "a")])
        assert is_linearizable(history)

    def test_pending_only(self):
        history = History([op(0, "a", 0.0)])
        assert is_linearizable(history)

    def test_wrong_self_result(self):
        # A lone proposer must get its own value back.
        history = History([op(0, "a", 0.0, 2.0, "b")])
        assert not is_linearizable(history)

    def test_two_agreeing_operations(self):
        history = History(
            [op(0, "a", 0.0, 2.0, "a"), op(1, "b", 0.5, 2.5, "a")]
        )
        assert is_linearizable(history)

    def test_disagreeing_results(self):
        history = History(
            [op(0, "a", 0.0, 2.0, "a"), op(1, "b", 0.5, 2.5, "b")]
        )
        violations = check_linearizable(history)
        assert violations and "distinct values" in violations[0].description

    def test_winner_from_pending_operation(self):
        # The winner's proposer crashed before returning: its pending op
        # may still linearize first.
        history = History(
            [op(0, "a", 0.0), op(1, "b", 0.5, 3.0, "a")]
        )
        assert is_linearizable(history)

    def test_winner_invoked_too_late(self):
        # "a" was only proposed after an operation already returned "a":
        # nothing can have decided "a" by then.
        history = History(
            [op(1, "b", 0.0, 1.0, "a"), op(0, "a", 5.0, 6.0, "a")]
        )
        assert not is_linearizable(history)

    def test_winner_invoked_exactly_at_first_response(self):
        # Inclusive boundary: linearization points may coincide.
        history = History(
            [op(1, "b", 0.0, 1.0, "a"), op(0, "a", 1.0, 2.0, "a")]
        )
        assert is_linearizable(history)


class TestHistoryValidation:
    def test_response_before_invoke_rejected(self):
        with pytest.raises(HistoryError):
            History([op(0, "a", 5.0, 1.0, "a")])

    def test_bruteforce_size_guard(self):
        history = History([op(i, "a", float(i), float(i) + 1, "a") for i in range(9)])
        with pytest.raises(HistoryError, match="limited"):
            linearizable_bruteforce(history)


class TestAgainstBruteForce:
    @staticmethod
    def _histories(draw):
        count = draw(st.integers(min_value=1, max_value=4))
        values = ["a", "b"]
        operations = []
        for pid in range(count):
            arg = draw(st.sampled_from(values))
            invoke = draw(st.floats(min_value=0, max_value=5))
            completed = draw(st.booleans())
            if completed:
                duration = draw(st.floats(min_value=0, max_value=5))
                result = draw(st.sampled_from(values))
                operations.append(op(pid, arg, invoke, invoke + duration, result))
            else:
                operations.append(op(pid, arg, invoke))
        return History(operations)

    @given(st.data())
    @settings(max_examples=300, deadline=None)
    def test_fast_checker_matches_bruteforce(self, data):
        history = self._histories(data.draw)
        assert is_linearizable(history) == linearizable_bruteforce(history)
