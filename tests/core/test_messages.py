"""Tests for the message base class utilities."""

from dataclasses import dataclass

from repro.core import Message, message_sort_key
from repro.protocols.twostep import OneA, Propose, TwoB


class TestMessageBasics:
    def test_kind_is_class_name(self):
        assert Propose(1).kind == "Propose"
        assert TwoB(0, 1).kind == "TwoB"

    def test_fields_ordered(self):
        assert list(TwoB(0, "v").fields().items()) == [("ballot", 0), ("value", "v")]

    def test_describe(self):
        assert Propose(7).describe() == "Propose(value=7)"

    def test_frozen_and_hashable(self):
        assert hash(Propose(1)) == hash(Propose(1))
        assert Propose(1) == Propose(1)
        assert Propose(1) != Propose(2)


class TestSortKey:
    def test_orders_by_kind_first(self):
        assert message_sort_key(OneA(5)) < message_sort_key(Propose(0))

    def test_stable_within_kind(self):
        a, b = Propose(1), Propose(2)
        assert (message_sort_key(a) < message_sort_key(b)) == (
            repr(a.fields()) < repr(b.fields())
        )

    def test_custom_message_subclass(self):
        @dataclass(frozen=True)
        class Ping(Message):
            token: int

        assert Ping(3).kind == "Ping"
        assert message_sort_key(Ping(3)) == ("Ping", "{'token': 3}")
