"""Tests for the Process/Context abstractions."""

import pytest

from repro.core import CLIENT, Context, Message, Process
from repro.sim import Arena


class Minimal(Process):
    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.inbox = []

    def on_start(self, ctx: Context) -> None:
        pass

    def on_message(self, ctx: Context, sender, message) -> None:
        self.inbox.append((sender, message))


class TestProcessValidation:
    def test_rejects_empty_system(self):
        with pytest.raises(ValueError):
            Minimal(0, 0)

    def test_rejects_out_of_range_pid(self):
        with pytest.raises(ValueError):
            Minimal(5, 3)
        with pytest.raises(ValueError):
            Minimal(-1, 3)

    def test_repr(self):
        assert repr(Minimal(1, 3)) == "<Minimal pid=1 n=3>"

    def test_default_timer_handler_is_noop(self):
        Minimal(0, 1).on_timer(None, "x")

    def test_snapshot_exposes_public_state(self):
        process = Minimal(1, 3)
        process.counter = 7
        process._secret = "hidden"
        snapshot = process.snapshot()
        assert snapshot["counter"] == 7
        assert "_secret" not in snapshot
        assert snapshot["pid"] == 1


class TestContextHelpers:
    def _arena(self, n=4):
        return Arena(lambda pid, total: Minimal(pid, total), n)

    def test_others_excludes_self(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Probe(Message):
            pass

        class Prober(Minimal):
            def on_start(self, ctx):
                assert ctx.pid not in ctx.others
                assert len(ctx.others) == ctx.n - 1
                ctx.broadcast(Probe())

        arena = Arena(lambda pid, total: Prober(pid, total), 4)
        arena.start(0)
        assert len(arena.pending_messages(sender=0)) == 3

    def test_broadcast_include_self(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Probe(Message):
            pass

        class SelfProber(Minimal):
            def on_start(self, ctx):
                ctx.broadcast(Probe(), include_self=True)

        arena = Arena(lambda pid, total: SelfProber(pid, total), 3)
        arena.start(1)
        receivers = {pm.receiver for pm in arena.pending_messages(sender=1)}
        assert receivers == {0, 1, 2}

    def test_client_sender_id_reserved(self):
        assert CLIENT == -1
        arena = self._arena()
        arena.start_all()
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Req(Message):
            pass

        uid = arena.inject(2, Req())
        arena.deliver(arena.pending[uid])
        assert arena.processes[2].inbox == [(CLIENT, Req())]
