"""Tests for WAN deployments: predictions must match measurements."""

import pytest

from repro.core import ConfigurationError
from repro.wan import (
    Deployment,
    fast_path_prediction,
    five_regions,
    measured_commit_latency_twostep,
    per_site_latency_table,
    predicted_commit_latency_twostep,
    round_robin_deployment,
    seven_regions,
)


class TestPlacement:
    def test_round_robin(self):
        deployment = round_robin_deployment(five_regions(), 7)
        assert deployment.placement == (0, 1, 2, 3, 4, 0, 1)

    def test_rtt_symmetric_data(self):
        deployment = round_robin_deployment(five_regions(), 5)
        assert deployment.rtt(0, 2) == deployment.rtt(2, 0)

    def test_delta_is_max_one_way(self):
        deployment = round_robin_deployment(five_regions(), 5)
        assert deployment.delta() == deployment.topology.max_one_way()

    def test_site_of(self):
        deployment = round_robin_deployment(five_regions(), 6)
        assert deployment.site_of(5) == deployment.topology.sites[0]


class TestPrediction:
    def test_kth_nearest_rtt(self):
        deployment = round_robin_deployment(five_regions(), 5)
        rtts = sorted(deployment.rtt(0, pid) for pid in range(1, 5))
        assert fast_path_prediction(deployment, 0, 1) == rtts[0]
        assert fast_path_prediction(deployment, 0, 4) == rtts[3]

    def test_zero_responses_is_free(self):
        deployment = round_robin_deployment(five_regions(), 5)
        assert fast_path_prediction(deployment, 0, 0) == 0.0

    def test_too_many_responses_rejected(self):
        deployment = round_robin_deployment(five_regions(), 5)
        with pytest.raises(ConfigurationError):
            fast_path_prediction(deployment, 0, 5)

    def test_growing_n_at_fixed_e_costs_latency(self):
        """The paper's practical point: each extra process a stronger
        definition demands pushes the quorum to a farther site."""
        topo = seven_regions()
        e = 2
        latencies = []
        for n in (5, 6, 7):
            deployment = round_robin_deployment(topo, n)
            latencies.append(predicted_commit_latency_twostep(deployment, 0, e))
        assert latencies[0] <= latencies[1] <= latencies[2]
        assert latencies[2] > latencies[0]  # strictly worse overall


class TestMeasurement:
    def test_simulation_matches_prediction_exactly(self):
        deployment = round_robin_deployment(five_regions(), 5)
        for proposer in range(5):
            predicted = predicted_commit_latency_twostep(deployment, proposer, 2)
            measured = measured_commit_latency_twostep(deployment, proposer, 2, 2)
            assert measured == pytest.approx(predicted)

    def test_per_site_table_rows(self):
        deployment = round_robin_deployment(five_regions(), 5)
        rows = per_site_latency_table(deployment, e=2, f=2)
        assert len(rows) == 5
        for row in rows:
            assert row["measured_ms"] == pytest.approx(row["predicted_ms"])


class TestProtocolPredictions:
    def test_paxos_leader_proxy_is_cheapest(self):
        from repro.wan.deployment import predicted_commit_latency_paxos

        deployment = round_robin_deployment(seven_regions(), 5)
        leader_latency = predicted_commit_latency_paxos(deployment, 0, 2, leader=0)
        for proxy in range(1, 5):
            assert (
                predicted_commit_latency_paxos(deployment, proxy, 2, leader=0)
                > leader_latency
            )

    def test_paxos_remote_proxy_pays_forward_and_reply_hops(self):
        from repro.wan.deployment import predicted_commit_latency_paxos

        deployment = round_robin_deployment(seven_regions(), 5)
        base = predicted_commit_latency_paxos(deployment, 0, 2, leader=0)
        remote = predicted_commit_latency_paxos(deployment, 3, 2, leader=0)
        assert remote == pytest.approx(base + deployment.rtt(3, 0))

    def test_fast_paxos_same_formula_bigger_n(self):
        from repro.wan.deployment import (
            predicted_commit_latency_fast_paxos,
        )

        topo = seven_regions()
        small = round_robin_deployment(topo, 5)
        big = round_robin_deployment(topo, 7)
        assert predicted_commit_latency_fast_paxos(
            big, 0, 2
        ) >= predicted_commit_latency_twostep(small, 0, 2)

    def test_comparison_rows_shape(self):
        from repro.analysis import e5_protocol_comparison_rows

        rows = e5_protocol_comparison_rows(2, 2)
        by_protocol = {r["protocol"]: r for r in rows}
        assert by_protocol["twostep-object"]["n"] == 5
        assert by_protocol["fast-paxos"]["n"] == 7
        assert (
            by_protocol["twostep-object"]["mean_ms"]
            < by_protocol["fast-paxos"]["mean_ms"]
        )
