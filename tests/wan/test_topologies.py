"""Tests for the WAN topology data."""

import pytest

from repro.core import ConfigurationError
from repro.wan import (
    INTRA_REGION_MS,
    REGIONS,
    five_regions,
    nine_regions,
    one_way_ms,
    seven_regions,
    three_continents,
    topology,
)


class TestLatencyData:
    def test_symmetric(self):
        for a in REGIONS:
            for b in REGIONS:
                assert one_way_ms(a, b) == one_way_ms(b, a)

    def test_intra_region(self):
        assert one_way_ms("us-east", "us-east") == INTRA_REGION_MS

    def test_complete_coverage(self):
        # every pair has data (would raise otherwise)
        for a in REGIONS:
            for b in REGIONS:
                assert one_way_ms(a, b) > 0

    def test_wan_scale(self):
        # cross-continent latencies are in the "hundreds of ms RTT" regime
        assert one_way_ms("us-east", "ap-southeast") >= 50
        assert one_way_ms("eu-west", "au-southeast") >= 100

    def test_unknown_region(self):
        with pytest.raises(ConfigurationError):
            one_way_ms("us-east", "atlantis")


class TestTopologyBuilders:
    def test_matrix_shape(self):
        topo = five_regions()
        assert len(topo.sites) == 5
        assert all(len(row) == 5 for row in topo.matrix)

    def test_named_sizes(self):
        assert len(three_continents().sites) == 3
        assert len(seven_regions().sites) == 7
        assert len(nine_regions().sites) == 9

    def test_site_index(self):
        topo = five_regions()
        assert topo.sites[topo.site_index("eu-west")] == "eu-west"

    def test_max_one_way(self):
        topo = nine_regions()
        assert topo.max_one_way() == max(max(row) for row in topo.matrix)

    def test_custom_topology_validates_regions(self):
        with pytest.raises(ConfigurationError):
            topology(["us-east", "narnia"])
