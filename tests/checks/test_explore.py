"""Tests for the bounded exhaustive state-space explorer.

Three capability classes are covered:

* **violation detection** — broken toy protocols are caught with a
  counterexample trail, and the full Theorem 5 violating schedule
  (scripted as a prefix, derived from the Appendix B.1 witness) is
  recognized on the real protocol — notably *crash-free*, confirming
  that crashes are irrelevant to safety violations in this model;
* **exhaustive safety** — small configurations of Figure 1 are proven
  safe over every schedule within the bounds, including every
  interleaving of a full recovery ballot with in-flight fast votes;
* **bounded safety** — larger spaces report non-exhaustive cleanly.
"""

from dataclasses import dataclass

import pytest

from repro.checks.explore import explore
from repro.core import Context, Message, Process
from repro.omega import static_omega_factory
from repro.protocols import (
    ProposeRequest,
    TwoStepConfig,
    twostep_object_factory,
    twostep_task_factory,
)

BALLOT = "twostep:new_ballot"


class DecideOwn(Process):
    """Deliberately broken: every process decides its own proposal."""

    def __init__(self, pid, n, proposal):
        super().__init__(pid, n)
        self.proposal = proposal
        self.done = False

    def on_start(self, ctx: Context) -> None:
        ctx.decide(self.proposal)
        self.done = True

    def on_message(self, ctx: Context, sender, message) -> None:
        pass

    def snapshot(self):
        return {"done": self.done, "proposal": self.proposal}


class DecideForeign(Process):
    """Broken differently: decides a value nobody proposed, on message."""

    @dataclass(frozen=True)
    class Nudge(Message):
        pass

    def on_start(self, ctx: Context) -> None:
        if self.pid == 0:
            ctx.broadcast(DecideForeign.Nudge())

    def on_message(self, ctx: Context, sender, message) -> None:
        ctx.decide("out-of-thin-air")

    def snapshot(self):
        return {}


class TestViolationDetection:
    def test_agreement_violation_found(self):
        proposals = {0: "a", 1: "b", 2: "b"}
        report = explore(
            lambda pid, n: DecideOwn(pid, n, proposals[pid]),
            3,
            1,
            proposals=proposals,
        )
        assert not report.safe
        assert "agreement" in report.violation
        assert report.counterexample == []  # broken at the very root
        assert "stopped at first violation" in report.describe()

    def test_validity_violation_found(self):
        report = explore(
            lambda pid, n: DecideForeign(pid, n),
            3,
            1,
            proposals={0: "a", 1: "a", 2: "a"},
        )
        assert not report.safe
        assert "validity" in report.violation
        assert any(action.kind == "deliver" for action in report.counterexample)

    def test_theorem5_violating_schedule_recognized(self):
        """The Appendix B.1 agreement violation as an explicit crash-free
        message schedule (22 deliveries + 1 timer fire) at n = 2e+f-1."""
        f = e = 2
        n = 5
        proposals = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1}
        config = TwoStepConfig(f=f, e=e, enforce_bound=False)
        factory = twostep_task_factory(
            proposals, f, e, omega_factory=static_omega_factory(0), config=config
        )
        prefix = [
            # σ's synchronous rounds: p4's Propose(1) is accepted by 2, 3;
            # p4 itself votes p3's identical value. Two 2Bs + the implicit
            # self-vote give p4 its n-e = 3 supporters: it decides 1.
            ("deliver", (4, 2, "Propose")),
            ("deliver", (4, 3, "Propose")),
            ("deliver", (3, 4, "Propose")),
            ("deliver", (2, 4, "TwoB")),
            ("deliver", (3, 4, "TwoB")),
            # σ′'s rounds: p0 and p1 vote p2's value 0.
            ("deliver", (2, 0, "Propose")),
            ("deliver", (2, 1, "Propose")),
            # The recovery ballot: leader 0 hears exactly {0, 1, 3} — a
            # quorum in which value 0 holds 2 > n-f-e = 1 surviving votes
            # while the fast-decided 1 holds exactly 1. The rule picks 0.
            ("fire", (0, BALLOT)),
            ("deliver", (0, 0, "OneA")),
            ("deliver", (0, 1, "OneA")),
            ("deliver", (0, 3, "OneA")),
            ("deliver", (0, 0, "OneB")),
            ("deliver", (1, 0, "OneB")),
            ("deliver", (3, 0, "OneB")),
            ("deliver", (0, 0, "TwoA")),
            ("deliver", (0, 1, "TwoA")),
            ("deliver", (0, 3, "TwoA")),
            ("deliver", (0, 0, "TwoB")),
            ("deliver", (1, 0, "TwoB")),
            ("deliver", (3, 0, "TwoB")),
        ]
        report = explore(
            factory,
            n,
            f,
            proposals=proposals,
            ballot_bound=5,
            timer_fires=0,
            max_states=10,
            prefix=prefix,
        )
        assert not report.safe
        assert "agreement" in report.violation

    def test_same_schedule_is_safe_at_the_bound(self):
        """The identical adversary strategy at n = 2e+f cannot violate:
        the sixth process pads every quorum, so the recovery rule sees
        the fast value above threshold. (The schedule is re-derived for
        n=6; the leader's quorum is {0, 1, 3} plus its own report and
        the rule must select the fast-decided value 1.)"""
        f = e = 2
        n = 6
        proposals = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}
        factory = twostep_task_factory(
            proposals, f, e, omega_factory=static_omega_factory(0)
        )
        # p4 needs n-e-1 = 3 foreign votes now: 2, 3, 5.
        prefix = [
            ("deliver", (4, 2, "Propose")),
            ("deliver", (4, 3, "Propose")),
            ("deliver", (4, 5, "Propose")),
            ("deliver", (3, 4, "Propose")),
            ("deliver", (2, 4, "TwoB")),
            ("deliver", (3, 4, "TwoB")),
            ("deliver", (5, 4, "TwoB")),
            ("deliver", (2, 0, "Propose")),
            ("deliver", (2, 1, "Propose")),
            ("fire", (0, BALLOT)),
        ]
        report = explore(
            factory,
            n,
            f,
            proposals=proposals,
            ballot_bound=6,
            timer_fires=0,
            max_states=8_000,  # bounded: the n=6 space is large; 8k states
            prefix=prefix,  #     of it explored in a few seconds suffice here
        )
        # Bounded or exhaustive, no violation may surface.
        assert report.safe, report.describe()


class TestExhaustiveSafety:
    def test_task_n3_fast_path_every_schedule(self):
        proposals = {0: 1, 1: 0, 2: 0}
        factory = twostep_task_factory(
            proposals, 1, 1, omega_factory=static_omega_factory(0)
        )
        report = explore(factory, 3, 1, proposals=proposals, timer_fires=0)
        assert report.safe and report.exhaustive
        assert report.states_visited > 1000

    def test_task_n3_recovery_ballot_every_interleaving(self):
        """Drain the Propose wave, withhold the fast votes, open a ballot:
        every interleaving of the ballot with the in-flight fast votes —
        including late fast decisions — is explored exhaustively."""
        proposals = {0: 1, 1: 0, 2: 0}
        factory = twostep_task_factory(
            proposals, 1, 1, omega_factory=static_omega_factory(0)
        )
        prefix = [
            ("deliver", (s, r, "Propose"))
            for s in range(3)
            for r in range(3)
            if s != r
        ]
        prefix += [("fire", (0, BALLOT))]
        report = explore(
            factory,
            3,
            1,
            proposals=proposals,
            ballot_bound=3,
            timer_fires=0,
            max_states=100_000,
            prefix=prefix,
        )
        assert report.safe and report.exhaustive, report.describe()

    def test_object_n3_solo_proposer_every_schedule(self):
        factory = twostep_object_factory(
            1, 1, omega_factory=static_omega_factory(0)
        )
        report = explore(
            factory,
            3,
            1,
            injections=[(2, ProposeRequest("x"))],
            timer_fires=0,
        )
        assert report.safe and report.exhaustive

    def test_object_n3_two_proposers_every_schedule(self):
        factory = twostep_object_factory(
            1, 1, omega_factory=static_omega_factory(0)
        )
        report = explore(
            factory,
            3,
            1,
            injections=[(0, ProposeRequest("x")), (2, ProposeRequest("y"))],
            timer_fires=0,
            max_states=300_000,
        )
        assert report.safe and report.exhaustive, report.describe()


class TestBounds:
    def test_state_cap_reported_as_non_exhaustive(self):
        proposals = {0: 1, 1: 0, 2: 0}
        factory = twostep_task_factory(
            proposals, 1, 1, omega_factory=static_omega_factory(0)
        )
        report = explore(
            factory, 3, 1, proposals=proposals, timer_fires=2, max_states=50
        )
        assert report.safe and not report.exhaustive
        assert "state cap" in report.describe()

    def test_bad_prefix_step_rejected(self):
        from repro.core import SchedulerError

        proposals = {0: 1, 1: 0, 2: 0}
        factory = twostep_task_factory(
            proposals, 1, 1, omega_factory=static_omega_factory(0)
        )
        with pytest.raises(SchedulerError, match="matched no pending"):
            explore(
                factory,
                3,
                1,
                proposals=proposals,
                prefix=[("deliver", (0, 0, "NoSuchMessage"))],
            )
        with pytest.raises(SchedulerError, match="unarmed timer"):
            explore(
                factory,
                3,
                1,
                proposals=proposals,
                prefix=[("fire", (0, "nonexistent"))],
            )


class TestCrashActions:
    def test_crash_expansion_enabled_with_budget(self):
        """With max_crashes > 0, crash actions branch too; safety holds."""
        proposals = {0: 1, 1: 0, 2: 0}
        factory = twostep_task_factory(
            proposals, 1, 1, omega_factory=static_omega_factory(0)
        )
        report = explore(
            factory,
            3,
            1,
            proposals=proposals,
            timer_fires=0,
            max_crashes=1,
            max_states=100_000,
        )
        assert report.safe and report.exhaustive, report.describe()
        # Crashes enlarge the space relative to the crash-free run (1412).
        assert report.states_visited > 1412


class TestCrashBudgetDefault:
    """`max_crashes` defaults to `f`, as the docstring always promised.

    Before the fix the default was silently 0, so "exhaustive" safety
    reports never explored a single crash schedule unless callers opted
    in explicitly.
    """

    def test_default_equals_explicit_f(self):
        proposals = {0: 1, 1: 0, 2: 0}
        factory = twostep_task_factory(
            proposals, 1, 1, omega_factory=static_omega_factory(0)
        )
        default = explore(factory, 3, 1, proposals=proposals, timer_fires=0)
        explicit = explore(
            factory, 3, 1, proposals=proposals, timer_fires=0, max_crashes=1
        )
        crash_free = explore(
            factory, 3, 1, proposals=proposals, timer_fires=0, max_crashes=0
        )
        assert default.states_visited == explicit.states_visited
        assert default.states_visited > crash_free.states_visited
        assert default.safe and default.exhaustive

    def test_default_explores_crash_schedules(self):
        """Crash branching is on by default: the DFS pushes crash children
        last and pops them first, so the first counterexample found for a
        broken protocol lies on a schedule that includes a crash action —
        impossible before the fix, when the default budget was 0."""
        report = explore(
            lambda pid, n: DecideForeign(pid, n),
            3,
            1,
            proposals={0: "a", 1: "a", 2: "a"},
        )
        assert not report.safe
        assert any(action.kind == "crash" for action in report.counterexample)


class TestMaxStatesPoppedCheck:
    def test_state_hitting_the_cap_is_still_checked(self):
        """The popped state that exhausts `max_states` gets safety-checked
        before the cap is enforced; the old loop returned 'safe, bounded'
        with the violating state already in hand."""
        proposals = {0: "a", 1: "b", 2: "b"}
        report = explore(
            lambda pid, n: DecideOwn(pid, n, proposals[pid]),
            3,
            1,
            proposals=proposals,
            max_states=1,
        )
        assert not report.safe
        assert "agreement" in report.violation


class TestSignatureEngine:
    def test_sig_key_fast_path_matches_snapshot_canonicalization(self, monkeypatch):
        """TwoStepProcess.sig_key() must induce exactly the same state
        partition as the generic canonical(snapshot()) path: equal visited
        counts on an exhaustive run, with and without the fast path."""
        from repro.protocols.twostep import TwoStepProcess

        proposals = {0: 1, 1: 0, 2: 0}
        factory = twostep_task_factory(
            proposals, 1, 1, omega_factory=static_omega_factory(0)
        )
        fast = explore(factory, 3, 1, proposals=proposals, timer_fires=0)
        monkeypatch.delattr(TwoStepProcess, "sig_key")
        slow = explore(factory, 3, 1, proposals=proposals, timer_fires=0)
        assert fast.states_visited == slow.states_visited
        assert fast.exhaustive and slow.exhaustive

    def test_metrics_attached(self):
        proposals = {0: 1, 1: 0, 2: 0}
        factory = twostep_task_factory(
            proposals, 1, 1, omega_factory=static_omega_factory(0)
        )
        report = explore(factory, 3, 1, proposals=proposals, timer_fires=0)
        metrics = report.metrics
        assert metrics is not None and metrics.kind == "explore"
        assert metrics.units == report.states_visited
        assert metrics.units_per_sec > 0
        assert 0.0 < metrics.dedup_hit_rate < 1.0
        assert metrics.max_depth > 0 and metrics.max_frontier > 0


class TestShardedExploration:
    def test_workers_two_same_verdict_with_per_worker_metrics(self):
        proposals = {0: 1, 1: 0, 2: 0}
        factory = twostep_task_factory(
            proposals, 1, 1, omega_factory=static_omega_factory(0)
        )
        serial = explore(factory, 3, 1, proposals=proposals, timer_fires=0)
        sharded = explore(
            factory, 3, 1, proposals=proposals, timer_fires=0, workers=2
        )
        assert sharded.safe and sharded.exhaustive
        assert serial.safe and serial.exhaustive
        assert sharded.metrics.workers == 2
        assert len(sharded.metrics.per_worker) == 2

    def test_workers_find_the_same_violation(self):
        proposals = {0: "a", 1: "a", 2: "a"}
        serial = explore(
            lambda pid, n: DecideForeign(pid, n), 3, 1, proposals=proposals
        )
        sharded = explore(
            lambda pid, n: DecideForeign(pid, n),
            3,
            1,
            proposals=proposals,
            workers=2,
        )
        assert not serial.safe and not sharded.safe
        assert "validity" in sharded.violation
