"""Tests for the executable Definition 4 / Definition A.1 checkers.

These are the reproduction's headline positives and negatives:

* Figure 1 task variant satisfies Definition 4 at n = max{2e+f, 2f+1};
* Figure 1 object variant satisfies Definition A.1 at n = max{2e+f-1, 2f+1};
* Fast Paxos satisfies Definition 4 at Lamport's max{2e+f+1, 2f+1};
* Paxos fails Definition 4 for every e > 0.
"""

import pytest

from repro.bounds import (
    min_processes_lamport_fast,
    min_processes_object,
    min_processes_task,
)
from repro.checks import (
    check_object_two_step,
    check_task_two_step,
    fast_paxos_builder,
    paxos_builder,
    twostep_object_builder,
    twostep_task_builder,
)


class TestTaskDefinition:
    @pytest.mark.parametrize("f,e", [(1, 1), (2, 1), (2, 2)])
    def test_figure1_satisfies_definition4_at_bound(self, f, e):
        n = min_processes_task(f, e)
        report = check_task_two_step(
            twostep_task_builder(f, e), n, e, max_configurations=32
        )
        assert report.satisfied, report.describe()

    def test_figure1_satisfies_definition4_above_bound(self):
        report = check_task_two_step(
            twostep_task_builder(2, 2), 7, 2, max_configurations=16,
            max_faulty_sets=8,
        )
        assert report.satisfied, report.describe()

    def test_f3_e3_sampled(self):
        n = min_processes_task(3, 3)  # 9
        report = check_task_two_step(
            twostep_task_builder(3, 3),
            n,
            3,
            max_configurations=8,
            max_faulty_sets=6,
        )
        assert report.satisfied, report.describe()


class TestObjectDefinition:
    @pytest.mark.parametrize("f,e", [(2, 2), (3, 2)])
    def test_figure1_object_satisfies_definitionA1_at_bound(self, f, e):
        n = min_processes_object(f, e)
        report = check_object_two_step(twostep_object_builder(f, e), n, e)
        assert report.satisfied, report.describe()

    def test_f3_e3_sampled(self):
        n = min_processes_object(3, 3)  # 8
        report = check_object_two_step(
            twostep_object_builder(3, 3), n, 3, max_faulty_sets=8
        )
        assert report.satisfied, report.describe()

    def test_object_bound_is_below_task_bound(self):
        # The headline: at f=e=2 the object needs only 5 processes where
        # the task needs 6 and Fast Paxos 7.
        assert min_processes_object(2, 2) == 5
        assert min_processes_task(2, 2) == 6
        assert min_processes_lamport_fast(2, 2) == 7
        report = check_object_two_step(twostep_object_builder(2, 2), 5, 2)
        assert report.satisfied


class TestFastPaxos:
    def test_satisfies_definition4_at_lamport_bound(self):
        f = e = 2
        n = min_processes_lamport_fast(f, e)
        report = check_task_two_step(
            fast_paxos_builder(f, e),
            n,
            e,
            max_configurations=16,
            max_faulty_sets=10,
        )
        assert report.satisfied, report.describe()


class TestPaxosNegative:
    @pytest.mark.parametrize("e", [1, 2])
    def test_paxos_not_e_two_step(self, e):
        """§2: Paxos is not e-two-step for any e > 0 — whenever the
        initial leader is in E, no process can decide by 2Δ."""
        report = check_task_two_step(
            paxos_builder(2), 5, e, max_configurations=4
        )
        assert not report.satisfied
        # Every failure involves a faulty set containing the leader 0.
        assert all("E=[0" in failure for failure in report.failures)

    def test_paxos_zero_two_step(self):
        """With e = 0 (no crash may happen) the leader always decides by
        2Δ, so Paxos IS 0-two-step — the definitions coincide there."""
        report = check_task_two_step(
            paxos_builder(2), 5, 0, max_configurations=8
        )
        assert report.satisfied, report.describe()


class TestReportRendering:
    def test_describe_mentions_status(self):
        report = check_task_two_step(
            paxos_builder(1), 3, 1, max_configurations=2
        )
        text = report.describe()
        assert "VIOLATED" in text
        assert "runs" in text
