"""Tests for the consensus scenario battery itself."""

import pytest

from repro.checks import (
    consensus_battery,
    crash_scenarios,
    failing_scenarios,
    run_scenario,
    shuffled_delivery,
    twostep_task_builder,
)
from repro.sim import CrashPlan, FixedLatency


class TestCrashScenarios:
    def test_includes_empty_plan(self):
        plans = crash_scenarios(5, 2, 1.0)
        assert any(len(plan) == 0 for plan in plans)

    def test_includes_every_single_crash(self):
        plans = crash_scenarios(5, 2, 1.0)
        single = {next(iter(plan.crashed_pids)) for plan in plans if len(plan) == 1}
        assert single == set(range(5))

    def test_respects_budget(self):
        for plan in crash_scenarios(5, 2, 1.0):
            assert len(plan) <= 2

    def test_f_zero_only_empty_and_singletons_skipped(self):
        plans = crash_scenarios(3, 0, 1.0)
        # with f=0 the non-empty plans would be over budget for the run
        # harness; crash_scenarios still lists singles for probing, but
        # none with more than one crash
        assert all(len(plan) <= 1 for plan in plans)

    def test_deterministic_given_seed(self):
        a = [repr(p) for p in crash_scenarios(6, 2, 1.0, seed=3)]
        b = [repr(p) for p in crash_scenarios(6, 2, 1.0, seed=3)]
        assert a == b


class TestShuffledDelivery:
    def test_deterministic(self):
        from repro.protocols.twostep import Propose

        policy = shuffled_delivery(5)
        assert policy(0, 1, Propose(1)) == policy(0, 1, Propose(1))

    def test_seed_changes_order(self):
        from repro.protocols.twostep import Propose

        values = {
            seed: [shuffled_delivery(seed)(s, r, Propose(1)) for s in range(4) for r in range(4)]
            for seed in (1, 2)
        }
        assert values[1] != values[2]


class TestBattery:
    def test_scenario_names_unique(self):
        results = consensus_battery(
            twostep_task_builder(1, 1), 3, 1, async_seeds=(1,)
        )
        names = [r.name for r in results]
        assert len(names) == len(set(names))

    def test_green_battery_reports_no_failures(self):
        results = consensus_battery(
            twostep_task_builder(1, 1), 3, 1, async_seeds=(1,)
        )
        assert failing_scenarios(results) == []

    def test_run_scenario_returns_run(self):
        run = run_scenario(
            twostep_task_builder(1, 1),
            3,
            {0: 1, 1: 2, 2: 3},
            CrashPlan.none(),
            latency=FixedLatency(1.0),
            horizon=30.0,
        )
        assert run.decided_values()
