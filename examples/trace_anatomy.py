#!/usr/bin/env python3
"""Anatomy of a two-step decision: the full trace, round by round.

This example runs Figure 1 (task variant, f = e = 2, n = 6) through one
E-faulty synchronous run and narrates the records: who proposed what, who
voted for whom, and why the top proposer holds a fast quorum at exactly
2Δ. Useful for building intuition about the value-ordered fast path.
"""

from repro.core import DecideRecord, DeliverRecord, SendRecord
from repro.omega import lowest_correct_omega_factory
from repro.protocols import twostep_task_factory
from repro.protocols.twostep import Decide, Propose, TwoB
from repro.sim import synchronous_run

F = E = 2
N = 6
FAULTY = {0, 1}


def main() -> None:
    proposals = {pid: 100 + pid for pid in range(N)}
    factory = twostep_task_factory(
        proposals, F, E, omega_factory=lowest_correct_omega_factory(FAULTY)
    )
    run = synchronous_run(
        factory, N, faulty=FAULTY, prefer=5, proposals=proposals, horizon_rounds=4
    )

    print(f"system: n={N}, f={F}, e={E}  (Theorem 5 bound: 2e+f = {2*E+F})")
    print(f"proposals: {proposals}")
    print(f"crashed at t=0: {sorted(FAULTY)}  (that's e = {E} failures)")
    print(f"schedule: p5's messages handled first (the existential witness)")
    print()

    by_round = {}
    for record in run.records:
        by_round.setdefault(record.time, []).append(record)

    for time in sorted(by_round):
        if time > 3.0:
            break
        print(f"--- t = {time:.0f}Δ ---")
        for record in by_round[time]:
            if isinstance(record, SendRecord) and isinstance(record.message, Propose):
                print(
                    f"  p{record.sender} -> p{record.receiver}: "
                    f"Propose({record.message.value})"
                )
            elif isinstance(record, DeliverRecord) and isinstance(
                record.message, Propose
            ):
                pass  # the interesting outcome is the vote below
            elif isinstance(record, SendRecord) and isinstance(record.message, TwoB):
                if record.message.ballot == 0:
                    print(
                        f"  p{record.sender} votes for {record.message.value} "
                        f"(2B -> p{record.receiver})"
                    )
            elif isinstance(record, DecideRecord):
                print(f"  ** p{record.pid} DECIDES {record.value} **")
            elif isinstance(record, SendRecord) and isinstance(record.message, Decide):
                print(
                    f"  p{record.sender} -> p{record.receiver}: Decide({record.message.value})"
                )
        print()

    print("why p5 wins: every correct process accepts Propose(105) because")
    print("105 >= its own proposal (line 11); p5 then holds")
    print(f"|{{p2, p3, p4}} ∪ {{p5}}| = 4 = n - e votes at 2Δ (line 16) and decides.")
    print()
    deciders = sorted(run.deciders_by(2.0))
    print(f"two-step deciders: {deciders}; all correct decided by "
          f"{max(run.decision_time(p) for p in run.correct):.0f}Δ")


if __name__ == "__main__":
    main()
