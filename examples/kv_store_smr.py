#!/usr/bin/env python3
"""A replicated key-value store over Figure 1's consensus object.

The practical setting the paper's definition models: clients submit
commands to a *proxy* replica (Schneider's state-machine approach); the
proxy answers once its slot's consensus instance decides. With the object
variant of Figure 1, an uncontended command commits after exactly two
message delays at only n = max{2e+f-1, 2f+1} replicas — and the log stays
consistent through slot races and even a crashing proxy.
"""

from repro.analysis import render_records
from repro.omega import static_omega_factory
from repro.sim import CrashPlan
from repro.smr import (
    KVCommand,
    check_logs_consistent,
    put_get_workload,
    run_kv_workload,
    smr_factory,
)
from repro.smr.client import ClientOp

F = E = 2
N = max(2 * E + F - 1, 2 * F + 1)  # 5 replicas


def section(title):
    print()
    print(title)
    print("-" * len(title))


def main() -> None:
    factory = smr_factory(F, E, omega_factory=static_omega_factory(0))

    section(f"Uncontended workload on {N} replicas (commands 4Δ apart)")
    ops = put_get_workload(8, ["user:1", "user:2"], proxies=list(range(N)), spacing=4.0)
    outcome = run_kv_workload(factory, N, ops, until=100.0)
    rows = [
        {
            "command": op.command.command_id,
            "proxy": op.proxy,
            "op": f"{op.command.op} {op.command.key}",
            "commit_latency": outcome.commit_latency.get(op.command.command_id),
            "result": repr(outcome.results.get(op.command.command_id)),
        }
        for op in ops
    ]
    print(render_records(rows))
    print(f"log consistency violations: {check_logs_consistent(outcome.replicas) or 'none'}")

    section("Contended workload: three proxies race for the same slots")
    ops = put_get_workload(6, ["hot"], proxies=[0, 1, 2], spacing=0.0)
    outcome = run_kv_workload(factory, N, ops, until=200.0)
    log = outcome.replicas[0].committed_log()
    print("final log at replica 0:")
    for slot in sorted(log):
        print(f"  slot {slot}: {log[slot].command_id} ({log[slot].op} {log[slot].key})")
    print(f"commit latencies: {sorted(outcome.commit_latency.values())}")
    print(f"violations: {check_logs_consistent(outcome.replicas) or 'none'}")

    section("A proxy crashes mid-flight; the log heals itself")
    ops = [
        ClientOp(0.0, 1, KVCommand(op="put", key="a", value=1, command_id="doomed")),
        ClientOp(2.0, 0, KVCommand(op="put", key="b", value=2, command_id="b2")),
        ClientOp(4.0, 2, KVCommand(op="put", key="c", value=3, command_id="c3")),
    ]
    outcome = run_kv_workload(
        factory, N, ops, until=300.0, crashes=CrashPlan.at(0.5, [1])
    )
    live = [r for r in outcome.replicas if r.pid != 1]
    print(f"unfinished (crashed proxy's own): {outcome.unfinished}")
    print(f"violations among live replicas: {check_logs_consistent(live) or 'none'}")
    print(f"stores converged to: {live[0].store.snapshot()}")
    applied = [replica.applied_upto for replica in live]
    print(f"applied-through (per live replica): {applied}")


if __name__ == "__main__":
    main()
