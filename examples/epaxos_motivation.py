#!/usr/bin/env python3
"""The conundrum that motivated the paper, reproduced live.

Egalitarian Paxos runs on n = 2f+1 replicas and, for conflict-free
commands, commits after two message delays even when e = ceil((f+1)/2)
replicas have crashed. Lamport's lower bound says fast consensus needs
max{2e+f+1, 2f+1} = 2f+3 processes (for even f) — two more than EPaxos
uses. "What's going on?"

The resolution (Theorems 5 and 6): EPaxos implements consensus as an
*object* under the weaker, practically-sufficient e-two-step requirement,
whose tight bound max{2e+f-1, 2f+1} equals 2f+1 exactly at EPaxos's e.
This example shows the phenomenon: fast commits at n = 2f+1 under e
crashes, degrading only with conflict rate.
"""

from repro.analysis import e8_epaxos_rows, render_records
from repro.bounds import (
    epaxos_fast_threshold,
    min_processes_lamport_fast,
    min_processes_object,
)
from repro.protocols.epaxos import Command, Request, epaxos_factory
from repro.sim import CrashPlan, FixedLatency, Simulation


def main() -> None:
    print("Bounds at EPaxos's operating point (n = 2f+1, e = ceil((f+1)/2)):")
    rows = []
    for f in (1, 2, 3, 4):
        e = epaxos_fast_threshold(f)
        rows.append(
            {
                "f": f,
                "e": e,
                "epaxos_n": 2 * f + 1,
                "lamport_bound": min_processes_lamport_fast(f, e),
                "object_bound(Thm6)": min_processes_object(f, e),
            }
        )
    print(render_records(rows))
    print()
    print("Lamport's bound seemingly forbids EPaxos; the object bound admits it.")
    print()

    print("Commit latency vs conflict rate at n = 2f+1 (simulated):")
    print(render_records(e8_epaxos_rows(), float_digits=2))
    print()

    print("And under e crashed replicas (f=2, e=2, n=5, conflict-free):")
    f = 2
    e = epaxos_fast_threshold(f)
    n = 2 * f + 1
    sim = Simulation(
        epaxos_factory(f),
        n,
        latency=FixedLatency(1.0),
        crashes=CrashPlan.at_start([n - e, n - 1]),
    )
    sim.inject(0.0, 0, Request(Command("x", "put", 1, "cmd-x")))
    sim.inject(0.0, 1, Request(Command("y", "put", 2, "cmd-y")))
    sim.run(until=30.0)
    for proxy in (0, 1):
        state = sim.processes[proxy].instances[(proxy, 0)]
        print(
            f"  replica {proxy}: committed {state.command.command_id!r} "
            f"at t={state.committed_at} (two message delays)"
        )


if __name__ == "__main__":
    main()
