#!/usr/bin/env python3
"""Quickstart: run the paper's protocol and see a two-step decision.

The headline of the paper in one script: with f = e = 2,

* Fast Paxos needs 7 processes to decide in two message delays under
  2 failures (Lamport's bound max{2e+f+1, 2f+1});
* Figure 1's task variant does it with 6 (Theorem 5);
* Figure 1's object variant does it with 5 (Theorem 6).

We run all three at their minimal sizes, crash e = 2 processes at the
start, and watch a process decide at time 2Δ.
"""

from repro.bounds import (
    min_processes_lamport_fast,
    min_processes_object,
    min_processes_task,
)
from repro.core import check_consensus
from repro.omega import lowest_correct_omega_factory
from repro.protocols import (
    ProposeRequest,
    fast_paxos_factory,
    twostep_object_factory,
    twostep_task_factory,
)
from repro.sim import CrashPlan, FixedLatency, Simulation, prefer_sender, synchronous_run

F = E = 2
DELTA = 1.0
FAULTY = {0, 1}  # e = 2 processes crash at the very start


def banner(text: str) -> None:
    print()
    print(text)
    print("-" * len(text))


def show(run, n, label):
    deciders = sorted(run.deciders_by(2 * DELTA))
    print(f"{label}: n={n}, crashed={sorted(run.crashed)}")
    for pid in sorted(run.correct):
        time = run.decision_time(pid)
        value = run.decided_value(pid)
        stamp = f"t={time:.1f}" if time is not None else "never"
        fast = "  <-- two-step!" if time is not None and time <= 2 * DELTA else ""
        print(f"  p{pid} decided {value!r} at {stamp}{fast}")
    violations = check_consensus(run)
    print(f"  two-step deciders: {deciders}; spec violations: {violations or 'none'}")


def main() -> None:
    banner("Fast Paxos at Lamport's bound (n = 2e+f+1 = 7)")
    n = min_processes_lamport_fast(F, E)
    proposals = {pid: 100 + pid for pid in range(n)}
    factory = fast_paxos_factory(
        proposals, F, E, omega_factory=lowest_correct_omega_factory(FAULTY)
    )
    run = synchronous_run(
        factory, n, faulty=FAULTY, prefer=3, proposals=proposals, delta=DELTA
    )
    show(run, n, "fast-paxos")

    banner("Figure 1, task variant, one process fewer (n = 2e+f = 6)")
    n = min_processes_task(F, E)
    proposals = {pid: 100 + pid for pid in range(n)}
    factory = twostep_task_factory(
        proposals, F, E, omega_factory=lowest_correct_omega_factory(FAULTY)
    )
    # The witness schedule: the highest proposer's messages arrive first.
    run = synchronous_run(
        factory, n, faulty=FAULTY, prefer=n - 1, proposals=proposals, delta=DELTA
    )
    show(run, n, "twostep-task")

    banner("Figure 1, object variant, two processes fewer (n = 2e+f-1 = 5)")
    n = min_processes_object(F, E)
    factory = twostep_object_factory(
        F, E, omega_factory=lowest_correct_omega_factory(FAULTY)
    )
    sim = Simulation(
        factory,
        n,
        latency=FixedLatency(DELTA),
        crashes=CrashPlan.at_start(FAULTY),
        delivery_priority=prefer_sender(4),
    )
    # Only one client proposes — the proxy setting the paper argues for.
    sim.inject(0.0, 4, ProposeRequest("ship-it"))
    sim.run_record.proposals[4] = "ship-it"
    run = sim.run(until=30 * DELTA)
    show(run, n, "twostep-object")

    print()
    print("Same two-message-delay latency, tolerating the same e = 2 crashes,")
    print("with 7 vs 6 vs 5 processes — the gap Theorems 5 and 6 make tight.")


if __name__ == "__main__":
    main()
