#!/usr/bin/env python3
"""Model-check the protocol: exhaustive safety, and the bound's edge.

Two demonstrations of the bounded exhaustive explorer:

1. **An exhaustive safety proof.** Every schedule of Figure 1's fast path
   at n = 3 (f = e = 1) — every interleaving of every message delivery,
   first crash-free and then with the default crash budget of f — is
   enumerated and checked for Agreement and Validity. A clean report
   is a proof for this configuration, not a statistical claim.

2. **The Theorem 5 violation as a concrete schedule.** One process below
   the task bound (n = 2e+f-1 = 5), the Appendix B.1 agreement violation
   is just 22 message deliveries and one timer expiry — notably with NO
   crash events: in an asynchronous crash-stop system, a crashed process
   is indistinguishable from a slow one, so the adversary needs only
   delays. The explorer replays the schedule and reports the violation.
"""

from repro.checks.explore import explore
from repro.omega import static_omega_factory
from repro.protocols import TwoStepConfig, twostep_task_factory

BALLOT = "twostep:new_ballot"


def exhaustive_proof() -> None:
    print("1. Exhaustive safety at the bound (n = 3, f = e = 1)")
    print("-" * 60)
    proposals = {0: 1, 1: 0, 2: 0}
    factory = twostep_task_factory(
        proposals, 1, 1, omega_factory=static_omega_factory(0)
    )
    report = explore(
        factory, 3, 1, proposals=proposals, timer_fires=0, max_crashes=0
    )
    print(f"   {report.describe()}")
    print("   Every crash-free fast-path schedule checked; none violates")
    print("   the spec.")
    print()
    # The default crash budget is the model's f, so dropping max_crashes=0
    # also explores every schedule with up to one crash:
    report = explore(factory, 3, 1, proposals=proposals, timer_fires=0)
    print(f"   with crashes (budget f=1): {report.describe().splitlines()[0]}")
    if report.metrics is not None:
        print(f"   metrics: {report.metrics.describe()}")
    print()
    # ... and with a full recovery ballot interleaved with in-flight votes:
    prefix = [
        ("deliver", (s, r, "Propose")) for s in range(3) for r in range(3) if s != r
    ] + [("fire", (0, BALLOT))]
    report = explore(
        factory,
        3,
        1,
        proposals=proposals,
        ballot_bound=3,
        timer_fires=0,
        prefix=prefix,
        max_states=100_000,
    )
    print(f"   with one recovery ballot: {report.describe().splitlines()[0]}")
    print()


def violating_schedule() -> None:
    print("2. The Theorem 5 violation, below the bound (n = 5, f = e = 2)")
    print("-" * 60)
    proposals = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1}
    config = TwoStepConfig(f=2, e=2, enforce_bound=False)
    factory = twostep_task_factory(
        proposals, 2, 2, omega_factory=static_omega_factory(0), config=config
    )
    schedule = [
        ("deliver", (4, 2, "Propose")),
        ("deliver", (4, 3, "Propose")),
        ("deliver", (3, 4, "Propose")),
        ("deliver", (2, 4, "TwoB")),
        ("deliver", (3, 4, "TwoB")),  # p4 decides 1 on the fast path
        ("deliver", (2, 0, "Propose")),
        ("deliver", (2, 1, "Propose")),  # p0, p1 vote 0
        ("fire", (0, BALLOT)),  # leader 0 opens a recovery ballot...
        ("deliver", (0, 0, "OneA")),
        ("deliver", (0, 1, "OneA")),
        ("deliver", (0, 3, "OneA")),
        ("deliver", (0, 0, "OneB")),
        ("deliver", (1, 0, "OneB")),
        ("deliver", (3, 0, "OneB")),  # ...hears {0,1,3}: 0 has 2 votes > n-f-e
        ("deliver", (0, 0, "TwoA")),
        ("deliver", (0, 1, "TwoA")),
        ("deliver", (0, 3, "TwoA")),
        ("deliver", (0, 0, "TwoB")),
        ("deliver", (1, 0, "TwoB")),
        ("deliver", (3, 0, "TwoB")),  # leader decides 0 — against p4's 1
    ]
    report = explore(
        factory,
        5,
        2,
        proposals=proposals,
        ballot_bound=5,
        timer_fires=0,
        max_states=10,
        prefix=schedule,
    )
    print(f"   {report.describe()}")
    print()
    print("   Twenty deliveries, one timer, zero crashes — agreement gone.")
    print("   At n = 2e+f the same strategy fails (see Figure 1's Lemma 7);")
    print("   the tests replay both. That is what a tight bound looks like.")


def main() -> None:
    exhaustive_proof()
    violating_schedule()


if __name__ == "__main__":
    main()
