#!/usr/bin/env python3
"""Wide-area replication: what the smaller bounds buy in milliseconds.

The paper's introduction: "contacting an additional process may incur a
cost of hundreds of milliseconds per command" in wide-area deployments.
This example places consensus processes across seven cloud-style regions
and measures the fast-path commit latency a proposer observes at

    n = 2e+f-1   (object bound, Theorem 6),
    n = 2e+f     (task bound, Theorem 5),
    n = 2e+f+1   (Lamport's bound, Fast Paxos's requirement),

for the same f = e = 2. Each added process forces the proposer to wait
for one more (farther) fast-path reply.
"""

from repro.analysis import render_records, summarize
from repro.wan import (
    measured_commit_latency_twostep,
    per_site_latency_table,
    predicted_commit_latency_twostep,
    round_robin_deployment,
    seven_regions,
)

F = E = 2


def main() -> None:
    topology = seven_regions()
    print(f"topology: {topology.name} — sites: {', '.join(topology.sites)}")
    print()

    sizes = [
        ("object bound (Thm 6)", 2 * E + F - 1),
        ("task bound (Thm 5)", 2 * E + F),
        ("Lamport bound", 2 * E + F + 1),
    ]
    summary_rows = []
    for label, n in sizes:
        deployment = round_robin_deployment(topology, n)
        rows = per_site_latency_table(deployment, e=E, f=F)
        print(render_records(rows, title=f"{label}: n={n} (per proposer, ms)"))
        print()
        measured = [row["measured_ms"] for row in rows if row["measured_ms"]]
        stats = summarize(measured)
        summary_rows.append(
            {
                "deployment": label,
                "n": n,
                "mean_ms": stats.mean,
                "worst_ms": stats.maximum,
            }
        )

    print(render_records(summary_rows, title="Commit latency vs process count"))
    baseline = summary_rows[-1]
    best = summary_rows[0]
    print()
    print(
        f"Dropping from Lamport's {baseline['n']} processes to the object "
        f"bound's {best['n']} saves "
        f"{baseline['mean_ms'] - best['mean_ms']:.0f} ms on average and "
        f"{baseline['worst_ms'] - best['worst_ms']:.0f} ms in the worst "
        "proposer position — per command."
    )


if __name__ == "__main__":
    main()
