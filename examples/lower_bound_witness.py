#!/usr/bin/env python3
"""Watch the lower bounds bite: execute the Appendix B constructions.

Theorems 5 and 6 say the protocol sizes are *tight*. This example
instantiates Figure 1 one process below each bound (the protocol happily
runs — the guard is disabled) and executes the paper's indistinguishability
constructions step by step. Agreement breaks, on cue, in both cases.

For the task (Appendix B.1, n = 2e+f-1):
  * σ1 — E1 ∪ F0 run two synchronous rounds; the top proposer p decides 1
    on the fast path; then E0 runs *its* two rounds seeing only E0 ∪ F0
    (everything from E1 is delayed); F0 ∪ {p} crash (exactly f).
  * σ0 — the mirror image where p' ∈ F0 decides 0.
  * The survivors took identical steps in both runs — verified on the
    traces — so the f-resilient continuation decides the same value in
    both, contradicting p or p'.

For the object (Appendix B.2, n = 2e+f-2): the σ/σ′ splice around two
solo proposers p (value 0) and q (value 1).
"""

from repro.bounds import (
    min_processes_object,
    min_processes_task,
    object_lower_bound_witness,
    task_lower_bound_witness,
)


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    banner("Consensus TASK below Theorem 5's bound")
    for f, e in ((2, 2), (3, 3)):
        result = task_lower_bound_witness(f, e)
        print()
        print(result.describe())
        assert result.violation_found
        assert result.partition.n == min_processes_task(f, e) - 1

    banner("Consensus OBJECT below Theorem 6's bound")
    for f, e in ((3, 3), (4, 4)):
        result = object_lower_bound_witness(f, e)
        print()
        print(result.describe())
        assert result.violation_found
        assert result.partition.n == min_processes_object(f, e) - 1

    banner("A closer look: the violating object run (f=3, e=3, n=7)")
    result = object_lower_bound_witness(3, 3)
    partition = result.partition
    print(f"partition: F={list(partition.shared)}, p={partition.p}, "
          f"q={partition.q}, E0*={list(partition.e0_star)}, "
          f"E1*={list(partition.e1_star)}")
    print(f"survivors: {sorted(partition.survivors)}")
    print()
    print("trace of σ′ (tail):")
    print(result.run_sigma_prime.format(limit=None).splitlines().__len__(),
          "records; last 12:")
    for line in result.run_sigma_prime.format().splitlines()[-12:]:
        print(" ", line)
    print()
    print("p decided 0 on the fast path before crashing; the survivors —")
    print("unable to tell this run from one where p never got that far —")
    print("recovered 1. One run, two decisions: the bound is tight.")


if __name__ == "__main__":
    main()
